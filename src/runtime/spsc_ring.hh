/**
 * @file
 * Fixed-capacity lock-free single-producer/single-consumer ring.
 *
 * The runtime's dispatch fabric: the producer (RSS dispatcher) feeds
 * each worker shard through one of these, so no queue ever has more
 * than one writer or one reader and the whole fast path needs no locks
 * and no atomic read-modify-write operations.
 *
 * Protocol (classic DPDK/folly shape):
 *  - `tail` is the producer's monotonically increasing write index,
 *    `head` the consumer's read index; slot = index & (capacity-1).
 *  - The producer publishes filled slots with a release store to
 *    `tail`; the consumer acquires `tail` to observe them. Freed slots
 *    travel the other way through `head`.
 *  - Each side keeps a cached copy of the opposite index and only
 *    re-reads the shared atomic when the cache says full/empty, so the
 *    steady state touches the peer's cache line once per batch, not
 *    once per item.
 *  - Indices and caches live on separate cache lines (alignas) to keep
 *    producer and consumer from false-sharing.
 *
 * Batch enqueue/dequeue amortize the atomic publish over many items;
 * partial acceptance (ring nearly full/empty) returns the count
 * actually transferred and never blocks.
 */

#ifndef HALO_RUNTIME_SPSC_RING_HH
#define HALO_RUNTIME_SPSC_RING_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace halo {

template <typename T>
class SpscRing
{
  public:
    /** @param capacity Desired slot count; rounded up to a power of
     *                  two (minimum 2). */
    explicit SpscRing(std::size_t capacity)
        : mask_(nextPowerOfTwo(std::max<std::size_t>(capacity, 2)) - 1),
          slots_(mask_ + 1)
    {
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    std::size_t capacity() const { return mask_ + 1; }

    /** Producer: move @p item in; false (item untouched) when full. */
    bool
    tryPush(T &&item)
    {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        if (freeSlots(tail, 1) == 0)
            return false;
        slots_[tail & mask_] = std::move(item);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    bool
    tryPush(const T &item)
    {
        T copy(item);
        return tryPush(std::move(copy));
    }

    /**
     * Producer: copy as many of @p items in as fit (a prefix).
     * @return number accepted; never blocks.
     */
    std::size_t
    pushBatch(std::span<const T> items)
    {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t n = std::min<std::size_t>(
            items.size(), freeSlots(tail, items.size()));
        for (std::size_t i = 0; i < n; ++i)
            slots_[(tail + i) & mask_] = items[i];
        if (n)
            tail_.store(tail + n, std::memory_order_release);
        return n;
    }

    /** Consumer: move one item out; false when empty. */
    bool
    tryPop(T &out)
    {
        return popBatch(&out, 1) == 1;
    }

    /**
     * Consumer: move up to @p max items into @p out.
     * @return number dequeued; never blocks.
     */
    std::size_t
    popBatch(T *out, std::size_t max)
    {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        if (tailCache_ - head < max)
            tailCache_ = tail_.load(std::memory_order_acquire);
        const std::size_t n =
            std::min<std::uint64_t>(max, tailCache_ - head);
        for (std::size_t i = 0; i < n; ++i)
            out[i] = std::move(slots_[(head + i) & mask_]);
        if (n)
            head_.store(head + n, std::memory_order_release);
        return n;
    }

    /** Any thread: approximate occupancy. Exact once the other side
     *  has quiesced (which is how drain uses it). */
    std::size_t
    size() const
    {
        const std::uint64_t tail = tail_.load(std::memory_order_acquire);
        const std::uint64_t head = head_.load(std::memory_order_acquire);
        return tail - head;
    }

    bool empty() const { return size() == 0; }

    /** Any thread: monotone count of items ever accepted (the
     *  producer's publish index). The elastic controller snapshots
     *  this as the drain fence when migrating a bucket away from this
     *  ring's consumer. */
    std::uint64_t pushedCount() const
    {
        return tail_.load(std::memory_order_acquire);
    }

  private:
    /** Producer-side free-slot count; refreshes the cached head only
     *  when the cache cannot satisfy @p want slots. */
    std::size_t
    freeSlots(std::uint64_t tail, std::size_t want)
    {
        if (capacity() - (tail - headCache_) < want)
            headCache_ = head_.load(std::memory_order_acquire);
        return capacity() - (tail - headCache_);
    }

    const std::size_t mask_;
    std::vector<T> slots_;

    /// Producer-owned line: write index + cached view of head.
    alignas(cacheLineBytes) std::atomic<std::uint64_t> tail_{0};
    std::uint64_t headCache_ = 0;

    /// Consumer-owned line: read index + cached view of tail.
    alignas(cacheLineBytes) std::atomic<std::uint64_t> head_{0};
    std::uint64_t tailCache_ = 0;

    /// Keep the consumer line exclusive (nothing packed after it).
    alignas(cacheLineBytes) std::uint8_t pad_[1]{};
};

} // namespace halo

#endif // HALO_RUNTIME_SPSC_RING_HH
