/**
 * @file
 * One shared-nothing dataplane worker.
 *
 * A Worker owns a private SimMemory and a complete SwitchShard
 * (hierarchy, core model, optional HALO complex, VirtualSwitch) — no
 * simulated state is shared between workers, so they scale without any
 * cross-shard synchronization, the NFOS/shared-nothing argument applied
 * to this codebase. Packets arrive through a single-producer ring and
 * are drained in configurable batches through the host fast path
 * (processPacket over warmed tables, untraced cuckoo scans underneath).
 *
 * Progress is published after every batch through PublishedCounter
 * (relaxed atomics, see sim/stats.hh): any thread may snapshot a
 * running worker without locks; the exact reduction — SwitchTotals and
 * the batch-latency HdrHistogram — is read after join(), which orders
 * everything.
 *
 * Observability: per-batch wall latency goes into a fixed-memory
 * obs::HdrHistogram (p50..p999 in bounded space, mergeable across
 * workers) instead of an unbounded vector, and when traceCapacity is
 * nonzero the thread installs a private obs::TraceRecorder so
 * HALO_TRACE_SCOPE sites in the worker and the vswitch pipeline record
 * into it; the runtime drains all recorders into one Chrome trace
 * after stop().
 */

#ifndef HALO_RUNTIME_WORKER_HH
#define HALO_RUNTIME_WORKER_HH

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "flow/flow_activity.hh"
#include "flow/flow_estimator.hh"
#include "net/packet.hh"
#include "obs/histogram.hh"
#include "obs/perf.hh"
#include "obs/trace.hh"
#include "runtime/mpsc_ring.hh"
#include "runtime/order_validator.hh"
#include "runtime/spsc_ring.hh"
#include "runtime/upcall.hh"
#include "sim/stats.hh"
#include "vswitch/shard.hh"

namespace halo {

/** Per-worker configuration. */
struct WorkerConfig
{
    unsigned id = 0;
    std::size_t ringCapacity = 1024;
    /// Packets drained per ring visit (DPDK-style burst size).
    unsigned batchSize = 32;
    /// Capacity of the worker's private simulated memory.
    std::uint64_t shardMemBytes = 1ull << 30;
    ShardConfig shard;
    /**
     * Classification burst width: ring batches are fed through
     * VirtualSwitch::processBurst in chunks of this many packets, so
     * the shard's prefetch-pipelined prepass overlaps their table
     * probes. 1 keeps the legacy packet-by-packet processPacket loop.
     * Values > 1 also set the shard vswitch's burstLanes.
     */
    unsigned classifyBurst = 1;
    bool warmTables = true;
    /// Trace-event ring slots for this worker's TraceRecorder
    /// (0 = no recorder; HALO_TRACE_SCOPE sites then cost one
    /// thread-local check). 16 bytes per slot.
    std::size_t traceCapacity = 0;
    /**
     * Decoupled slow path: deferred misses/promotions are enqueued
     * here (null = inline slow path). The ring is shared with the
     * other workers; the revalidator drains it. Requires the shard
     * vswitch to run with deferSlowPath.
     */
    MpscRing<UpcallRequest> *upcallRing = nullptr;
    /// Flow-activity stamps for revalidator aging (null = off).
    FlowActivity *activity = nullptr;
    /// Per-shard cardinality estimator feeding the adaptive EMC
    /// controller (null = off). The worker marks bits; the revalidator
    /// closes windows.
    ShardFlowEstimator *flowEstimator = nullptr;
    /// Sample 1-in-2^shift megaflow hits for EMC promotion upcalls
    /// (OVS's probabilistic EMC insertion; 0 = promote every hit).
    unsigned promoteSampleShift = 3;
    /// Install a PerfRecorder on the worker thread so HALO_PERF_SCOPE
    /// sites attribute PMU counts to pipeline stages. The PMU group is
    /// opened on the worker thread itself; open failure degrades to
    /// rdtsc-only. No effect when HALO_PERF_ENABLED is 0.
    bool perfEnabled = false;
    /// One full PMU group read per 2^shift scope entries per stage.
    unsigned perfSampleShift = 6;
    /// Intra-flow order oracle (null = off): every popped packet is
    /// reported in processing order before classification. Shared by
    /// all workers; observe() is thread-safe.
    FlowOrderValidator *orderValidator = nullptr;
};

/** Plain snapshot of a worker's published counters. */
struct WorkerCounters
{
    std::uint64_t packets = 0;
    std::uint64_t batches = 0;
    std::uint64_t matched = 0;
    std::uint64_t emcHits = 0;
    /// CPU time (CLOCK_THREAD_CPUTIME_ID) spent inside processPacket
    /// batches — excludes ring-empty idling and preemption.
    std::uint64_t busyNanos = 0;
    /// Miss upcalls enqueued to the revalidator (decoupled mode).
    std::uint64_t upcallsEnqueued = 0;
    /// Promote upcalls enqueued (post-sampling).
    std::uint64_t promotesEnqueued = 0;
    /// Requests lost to a full upcall ring (drop-not-block).
    std::uint64_t upcallDrops = 0;
    /// Times the thread entered the parked (condvar-wait) state.
    std::uint64_t parks = 0;
};

class Worker
{
  public:
    /** Builds the private shard and installs @p rules into it; the
     *  thread is not started until start(). */
    Worker(const WorkerConfig &config, const RuleSet &rules);
    ~Worker();

    Worker(const Worker &) = delete;
    Worker &operator=(const Worker &) = delete;

    unsigned id() const { return cfg.id; }

    /** The worker's ingress ring. Single producer: whoever dispatches
     *  to this worker must be one thread at a time. */
    SpscRing<Packet> &ring() { return ring_; }

    void start();

    /** Ask the thread to exit once its ring is empty. The producer
     *  must have quiesced first or the drain guarantee is void. */
    void requestStop();

    void join();
    bool joinable() const { return thread_.joinable(); }

    /** Lock-free snapshot; callable from any thread while running. */
    WorkerCounters counters() const;

    /** @name Elastic-runtime control surface (controller thread)
     *  Parking quiesces the busy-poll loop on a condvar once the ring
     *  is drained; the migration gate stalls this worker's ring pops
     *  until a source worker has processed past a fence, which is the
     *  "drain" half of the drain-then-remap protocol. */
    /**@{*/
    /** Ask the thread to park once its ring is empty. The controller
     *  must have remapped the indirection away first or stray arrivals
     *  keep waking it. */
    void requestPark();
    /** Wake a parked thread (also safe when not parked). */
    void requestUnpark();
    bool parked() const
    {
        return parked_.load(std::memory_order_acquire);
    }
    bool parkRequested() const
    {
        return parkRequested_.load(std::memory_order_acquire);
    }

    /** Stall this worker's packet processing until @p source 's
     *  processed packet count reaches @p fence. Armed *before* the
     *  indirection flip with an unreachable hold fence; the controller
     *  publishes the real fence (the source ring's pushedCount after
     *  the producer grace) via setMigrationGateFence. The gate
     *  self-clears on the worker thread. Returns false when a previous
     *  gate is still armed. Controller thread only. */
    bool armMigrationGate(const Worker *source, std::uint64_t fence);
    /** Lower (or raise) an armed gate's fence. Controller thread. */
    void setMigrationGateFence(std::uint64_t fence)
    {
        gateFence_.store(fence, std::memory_order_release);
    }
    bool migrationGateActive() const
    {
        return gateSource_.load(std::memory_order_acquire) != nullptr;
    }

    /** Epoch-and-reset read of the ring-occupancy high-watermark seen
     *  at popBatch time (controller/sampler thread). */
    std::uint64_t takeRingDepthHwm()
    {
        return ringHwm_.exchange(0, std::memory_order_relaxed);
    }
    /** Non-destructive read (metrics render). */
    std::uint64_t ringDepthHwm() const
    {
        return ringHwm_.load(std::memory_order_relaxed);
    }
    /**@}*/

    /** @name Post-join accessors (exact, single-threaded again) */
    /**@{*/
    SwitchShard &shard() { return shard_; }
    VirtualSwitch &vswitch() { return shard_.vswitch(); }
    const SwitchTotals &totals() const
    {
        return shard_.vswitch().totals();
    }
    /** Wall-clock nanoseconds per drained batch, log-bucketed. */
    const obs::HdrHistogram &batchHistogram() const
    {
        return batchHist_;
    }
    /** Null unless cfg.traceCapacity was nonzero. */
    const obs::TraceRecorder *traceRecorder() const
    {
        return trace_.get();
    }
    /**@}*/

    /** Null unless cfg.perfEnabled. Live any-thread snapshots are
     *  safe (the recorder's totals are relaxed atomics). */
    const obs::PerfRecorder *perfRecorder() const
    {
        return perf_.get();
    }

  private:
    void threadMain();
    /** Post-classification hook (decoupled mode): enqueue deferred
     *  miss/promotion upcalls for one result. Worker thread only. */
    void offload(const PacketResult &res);

    WorkerConfig cfg;
    SimMemory mem_; ///< private, shared-nothing
    SwitchShard shard_;
    SpscRing<Packet> ring_;

    std::thread thread_;
    std::atomic<bool> stop_{false};

    /// Park lifecycle: request flag flipped by the controller, parked
    /// state published by the worker, condvar for the sleep itself.
    std::atomic<bool> parkRequested_{false};
    std::atomic<bool> parked_{false};
    std::mutex parkMtx_;
    std::condition_variable parkCv_;

    /// Migration gate. gateFence_ is written before the release store
    /// to gateSource_ publishes it; the worker thread acquires
    /// gateSource_ before reading the fence. The fence itself is
    /// atomic because the controller lowers it from the hold value to
    /// the real drain fence while the gate is armed.
    std::atomic<std::uint64_t> gateFence_{0};
    std::atomic<const Worker *> gateSource_{nullptr};

    /// Ring occupancy high-watermark (worker relaxed-max, controller
    /// exchange(0) per epoch).
    std::atomic<std::uint64_t> ringHwm_{0};

    PublishedCounter packets_;
    PublishedCounter batches_;
    PublishedCounter matched_;
    PublishedCounter emcHits_;
    PublishedCounter busyNanos_;
    PublishedCounter upcallsEnqueued_;
    PublishedCounter promotesEnqueued_;
    PublishedCounter upcallDrops_;
    PublishedCounter parks_;

    obs::HdrHistogram batchHist_;           ///< worker thread only
    std::unique_ptr<obs::TraceRecorder> trace_; ///< worker thread only
    std::unique_ptr<obs::PerfRecorder> perf_; ///< scopes: worker thread
    std::vector<Packet> batchBuf_;          ///< worker thread only
    std::vector<PacketResult> resultBuf_;   ///< worker thread only

    /// Direct-mapped recent-miss cache (worker thread only):
    /// suppresses duplicate Miss upcalls for a flow while its install
    /// is in flight at the revalidator. Entries expire by packet
    /// count, so a dropped upcall is re-sent shortly after.
    struct MissEntry
    {
        std::uint64_t hash = 0;
        std::uint64_t seenAt = 0;
    };
    std::vector<MissEntry> recentMiss_;
    std::uint64_t packetSeq_ = 0; ///< worker thread only
    std::uint64_t rng_ = 0;       ///< promote-sampling xorshift state
};

} // namespace halo

#endif // HALO_RUNTIME_WORKER_HH
