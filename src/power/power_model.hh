/**
 * @file
 * Power and area models for the hardware flow-classification options
 * (paper SS6.4, Table 4).
 *
 * The TCAM curve is a piecewise power-law interpolation through the
 * paper's four published calibration points (1 KB .. 1 MB), which were
 * themselves produced with McPAT/CACTI; the SRAM-TCAM variant applies
 * the paper's reported deltas (~45% less power, ~57% less area); HALO's
 * per-accelerator numbers are the paper's constants.
 */

#ifndef HALO_POWER_POWER_MODEL_HH
#define HALO_POWER_POWER_MODEL_HH

#include <cstdint>
#include <vector>

namespace halo {

/** Power/area figure of merit for one device. */
struct PowerArea
{
    double areaTiles = 0.0;        ///< fraction of one CPU tile
    double staticMw = 0.0;         ///< leakage, milliwatts
    double dynamicNjPerQuery = 0.0;///< energy per lookup, nanojoules
};

/** TCAM of @p capacity_bytes ternary storage. */
PowerArea tcamPowerArea(std::uint64_t capacity_bytes);

/** SRAM-based TCAM of the same capacity. */
PowerArea sramTcamPowerArea(std::uint64_t capacity_bytes);

/** One HALO accelerator (constants from Table 4). */
PowerArea haloAcceleratorPowerArea();

/** A full HALO complex of @p accelerators accelerators. */
PowerArea haloComplexPowerArea(unsigned accelerators);

/**
 * Energy per query in nanojoules for a device running @p queries
 * lookups over @p seconds seconds: dynamic energy plus its share of
 * leakage.
 */
double energyPerQueryNj(const PowerArea &device, double queries_per_sec);

/**
 * Energy-efficiency ratio of @p baseline over @p candidate at equal
 * query rate (the paper's "48.2x more energy-efficient" headline
 * compares HALO to the 1 MB TCAM on dynamic energy).
 */
double dynamicEfficiencyRatio(const PowerArea &baseline,
                              const PowerArea &candidate);

/** The Table-4 calibration points (exposed for tests/benches). */
struct TcamCalibrationPoint
{
    std::uint64_t capacityBytes;
    PowerArea figures;
};
const std::vector<TcamCalibrationPoint> &tcamCalibration();

} // namespace halo

#endif // HALO_POWER_POWER_MODEL_HH
