#include "power/power_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace halo {

namespace {

/** Piecewise log-log interpolation through calibration points; linear
 *  extrapolation in log space beyond the ends. */
double
interpLogLog(const std::vector<TcamCalibrationPoint> &pts,
             std::uint64_t capacity, double (*get)(const PowerArea &))
{
    HALO_ASSERT(pts.size() >= 2);
    const double x = std::log(static_cast<double>(capacity));
    std::size_t hi = 1;
    while (hi + 1 < pts.size() &&
           static_cast<double>(pts[hi].capacityBytes) <
               static_cast<double>(capacity)) {
        ++hi;
    }
    const std::size_t lo = hi - 1;
    const double x0 = std::log(static_cast<double>(pts[lo].capacityBytes));
    const double x1 = std::log(static_cast<double>(pts[hi].capacityBytes));
    const double y0 = std::log(get(pts[lo].figures));
    const double y1 = std::log(get(pts[hi].figures));
    const double t = (x - x0) / (x1 - x0);
    return std::exp(y0 + t * (y1 - y0));
}

} // namespace

const std::vector<TcamCalibrationPoint> &
tcamCalibration()
{
    // Paper Table 4.
    static const std::vector<TcamCalibrationPoint> points = {
        {1ull << 10, {0.001, 71.1, 0.04}},
        {10ull << 10, {0.066, 235.3, 0.37}},
        {100ull << 10, {1.044, 3850.5, 13.84}},
        {1ull << 20, {9.343, 26733.1, 84.82}},
    };
    return points;
}

PowerArea
tcamPowerArea(std::uint64_t capacity_bytes)
{
    HALO_ASSERT(capacity_bytes >= 64, "TCAM capacity too small to model");
    const auto &pts = tcamCalibration();
    PowerArea pa;
    pa.areaTiles = interpLogLog(
        pts, capacity_bytes,
        [](const PowerArea &p) { return p.areaTiles; });
    pa.staticMw = interpLogLog(
        pts, capacity_bytes,
        [](const PowerArea &p) { return p.staticMw; });
    pa.dynamicNjPerQuery = interpLogLog(
        pts, capacity_bytes,
        [](const PowerArea &p) { return p.dynamicNjPerQuery; });
    return pa;
}

PowerArea
sramTcamPowerArea(std::uint64_t capacity_bytes)
{
    // Paper SS6.4: "typically consumes 45% less power, and 57% less
    // area cost" than an equal-capacity TCAM.
    PowerArea pa = tcamPowerArea(capacity_bytes);
    pa.areaTiles *= 1.0 - 0.57;
    pa.staticMw *= 1.0 - 0.45;
    pa.dynamicNjPerQuery *= 1.0 - 0.45;
    return pa;
}

PowerArea
haloAcceleratorPowerArea()
{
    // Paper Table 4 / SS6.4: per-accelerator constants.
    return PowerArea{0.012, 97.2, 1.76};
}

PowerArea
haloComplexPowerArea(unsigned accelerators)
{
    PowerArea one = haloAcceleratorPowerArea();
    return PowerArea{one.areaTiles * accelerators,
                     one.staticMw * accelerators,
                     one.dynamicNjPerQuery};
}

double
energyPerQueryNj(const PowerArea &device, double queries_per_sec)
{
    HALO_ASSERT(queries_per_sec > 0);
    // staticMw [1e-3 J/s] / qps [1/s] = 1e-3 J/query = 1e6 nJ/query.
    const double leakage_nj = device.staticMw * 1.0e6 / queries_per_sec;
    return device.dynamicNjPerQuery + leakage_nj;
}

double
dynamicEfficiencyRatio(const PowerArea &baseline,
                       const PowerArea &candidate)
{
    HALO_ASSERT(candidate.dynamicNjPerQuery > 0);
    return baseline.dynamicNjPerQuery / candidate.dynamicNjPerQuery;
}

} // namespace halo
