/**
 * @file
 * Fundamental scalar types shared by every HALO simulation library.
 *
 * The simulator follows the gem5 convention of expressing simulated time
 * in integral cycle counts and physical locations as 64-bit addresses.
 */

#ifndef HALO_SIM_TYPES_HH
#define HALO_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace halo {

/** Simulated physical/virtual address. */
using Addr = std::uint64_t;

/** Simulated time expressed in CPU core cycles. */
using Cycles = std::uint64_t;

/** Identifier of a CPU core in the simulated socket. */
using CoreId = std::uint32_t;

/** Identifier of an LLC slice / CHA in the simulated socket. */
using SliceId = std::uint32_t;

/** Sentinel for "no address". */
inline constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "never" / unbounded time. */
inline constexpr Cycles foreverCycles = std::numeric_limits<Cycles>::max();

/** Size of one cache line in bytes; buckets align with this (paper §2.2). */
inline constexpr unsigned cacheLineBytes = 64;

/** Mask an address down to its cache-line base. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(cacheLineBytes - 1);
}

/** True when @p addr is the first byte of a cache line. */
constexpr bool
isLineAligned(Addr addr)
{
    return (addr & (cacheLineBytes - 1)) == 0;
}

/** Integer ceiling division used throughout the timing models. */
constexpr std::uint64_t
ceilDiv(std::uint64_t num, std::uint64_t den)
{
    return (num + den - 1) / den;
}

/** True when @p v is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Smallest power of two >= v (v must be <= 2^63). */
constexpr std::uint64_t
nextPowerOfTwo(std::uint64_t v)
{
    if (v <= 1)
        return 1;
    --v;
    v |= v >> 1;
    v |= v >> 2;
    v |= v >> 4;
    v |= v >> 8;
    v |= v >> 16;
    v |= v >> 32;
    return v + 1;
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    unsigned n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace halo

#endif // HALO_SIM_TYPES_HH
