/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  — an internal invariant of the simulator was violated (a bug).
 * fatal()  — the user asked for something the simulator cannot do.
 * warn()   — something is questionable but simulation continues.
 * inform() — purely informative status output.
 */

#ifndef HALO_SIM_LOGGING_HH
#define HALO_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace halo {

/** Exception thrown by panic(); a simulator bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what) : std::logic_error(what) {}
};

/** Exception thrown by fatal(); a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what) : std::runtime_error(what) {}
};

namespace detail {

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

} // namespace detail

/**
 * Report a simulator bug and abort the current simulation by throwing.
 * Use for conditions that must never happen regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(detail::concat("panic: ", args...));
}

/**
 * Report an unrecoverable user/configuration error by throwing.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(detail::concat("fatal: ", args...));
}

/** Report a suspicious but non-fatal condition to stderr. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::fputs(detail::concat("warn: ", args..., "\n").c_str(), stderr);
}

/** Report normal status to stderr. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::fputs(detail::concat("info: ", args..., "\n").c_str(), stderr);
}

/** panic() unless @p cond holds. */
#define HALO_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond))                                                         \
            ::halo::panic("assertion '", #cond, "' failed at ", __FILE__,    \
                          ":", __LINE__, " ", ##__VA_ARGS__);                \
    } while (0)

} // namespace halo

#endif // HALO_SIM_LOGGING_HH
