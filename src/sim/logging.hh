/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  — an internal invariant of the simulator was violated (a bug).
 * fatal()  — the user asked for something the simulator cannot do.
 * warn()   — something is questionable but simulation continues.
 * inform() — purely informative status output.
 *
 * warn()/inform() route through a leveled, pluggable sink (see
 * LogLevel/setLogSink below). Emission is thread-safe: the full line
 * is built first and handed to the sink as one string under a lock,
 * so concurrent workers never interleave fragments. The minimum level
 * defaults to Info and can be overridden per process with the
 * HALO_LOG_LEVEL environment variable ("debug", "info", "warn",
 * "error", "off", or a numeral 0-4), or at runtime with
 * setLogLevel(). panic()/fatal() are exceptions, not log lines, and
 * bypass the sink.
 */

#ifndef HALO_SIM_LOGGING_HH
#define HALO_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace halo {

/** Severity of a log line; Off disables everything. */
enum class LogLevel : int
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4,
};

/**
 * Receives one complete log line (no trailing newline). Calls are
 * serialized by the logging layer — a sink needs no locking of its
 * own and its output cannot interleave.
 */
using LogSink = std::function<void(LogLevel, std::string_view)>;

/** Install @p sink (nullptr restores the default stderr sink). */
void setLogSink(LogSink sink);

/** Minimum level that reaches the sink. Initialized from
 *  HALO_LOG_LEVEL on first use; this overrides it. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** True when a line at @p level would be emitted (cheap pre-check so
 *  callers can skip formatting). */
bool logEnabled(LogLevel level);

/** Filter on level, then hand the finished line to the sink as one
 *  write. Safe to call from any thread. */
void logLine(LogLevel level, std::string line);

/** Exception thrown by panic(); a simulator bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what) : std::logic_error(what) {}
};

/** Exception thrown by fatal(); a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what) : std::runtime_error(what) {}
};

namespace detail {

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

} // namespace detail

/**
 * Report a simulator bug and abort the current simulation by throwing.
 * Use for conditions that must never happen regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(detail::concat("panic: ", args...));
}

/**
 * Report an unrecoverable user/configuration error by throwing.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(detail::concat("fatal: ", args...));
}

/** Report a suspicious but non-fatal condition (LogLevel::Warn). */
template <typename... Args>
void
warn(const Args &...args)
{
    if (logEnabled(LogLevel::Warn))
        logLine(LogLevel::Warn, detail::concat("warn: ", args...));
}

/** Report normal status (LogLevel::Info). */
template <typename... Args>
void
inform(const Args &...args)
{
    if (logEnabled(LogLevel::Info))
        logLine(LogLevel::Info, detail::concat("info: ", args...));
}

/** Verbose diagnostics, off by default (LogLevel::Debug). */
template <typename... Args>
void
debugLog(const Args &...args)
{
    if (logEnabled(LogLevel::Debug))
        logLine(LogLevel::Debug, detail::concat("debug: ", args...));
}

/** panic() unless @p cond holds. */
#define HALO_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond))                                                         \
            ::halo::panic("assertion '", #cond, "' failed at ", __FILE__,    \
                          ":", __LINE__, " ", ##__VA_ARGS__);                \
    } while (0)

} // namespace halo

#endif // HALO_SIM_LOGGING_HH
