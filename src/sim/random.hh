/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * Every experiment in the repository is seeded explicitly so that the
 * benchmark harnesses regenerate identical tables and figures run-to-run.
 */

#ifndef HALO_SIM_RANDOM_HH
#define HALO_SIM_RANDOM_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace halo {

/**
 * SplitMix64 generator; also used to seed Xoshiro256.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64 uniformly distributed bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * Xoshiro256** — fast, high-quality generator used by all workload
 * generators in the repository.
 */
class Xoshiro256
{
  public:
    explicit Xoshiro256(std::uint64_t seed)
    {
        SplitMix64 sm(seed);
        for (auto &word : state)
            word = sm.next();
    }

    /** Next 64 uniformly distributed bits. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        HALO_ASSERT(bound != 0);
        // Lemire's nearly-divisionless bounded generation.
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            std::uint64_t threshold = (0 - bound) % bound;
            while (low < threshold) {
                m = static_cast<unsigned __int128>(next()) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

/**
 * Zipf-distributed integer sampler over [0, n).
 *
 * Used to model hot flows in data-center traffic (paper §3.2, "20 hot
 * rules"). Implemented with an inverse-CDF table, so sampling is O(log n).
 */
class ZipfDistribution
{
  public:
    /**
     * @param n     Population size.
     * @param skew  Zipf exponent s (0 = uniform; ~0.99 typical for traffic).
     */
    ZipfDistribution(std::size_t n, double skew);

    /** Draw one rank in [0, n). Lower ranks are hotter. */
    std::size_t sample(Xoshiro256 &rng) const;

    /** Population size. */
    std::size_t size() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
};

} // namespace halo

#endif // HALO_SIM_RANDOM_HH
