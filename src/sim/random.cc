#include "sim/random.hh"

#include <algorithm>
#include <cmath>

namespace halo {

ZipfDistribution::ZipfDistribution(std::size_t n, double skew)
{
    HALO_ASSERT(n > 0, "Zipf population must be nonzero");
    cdf.resize(n);
    double accum = 0.0;
    for (std::size_t rank = 0; rank < n; ++rank) {
        accum += 1.0 / std::pow(static_cast<double>(rank + 1), skew);
        cdf[rank] = accum;
    }
    const double total = accum;
    for (auto &v : cdf)
        v /= total;
    // Guard against floating point drift at the top of the table.
    cdf.back() = 1.0;
}

std::size_t
ZipfDistribution::sample(Xoshiro256 &rng) const
{
    const double u = rng.nextDouble();
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    if (it == cdf.end())
        return cdf.size() - 1;
    return static_cast<std::size_t>(it - cdf.begin());
}

} // namespace halo
