#include "sim/logging.hh"

#include <atomic>
#include <cctype>
#include <mutex>

namespace halo {

namespace {

/** Parse HALO_LOG_LEVEL; unknown values keep the default. */
int
initialLevel()
{
    const char *env = std::getenv("HALO_LOG_LEVEL");
    if (!env || !*env)
        return static_cast<int>(LogLevel::Info);
    std::string v;
    for (const char *p = env; *p; ++p)
        v.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p))));
    if (v == "debug" || v == "0")
        return static_cast<int>(LogLevel::Debug);
    if (v == "info" || v == "1")
        return static_cast<int>(LogLevel::Info);
    if (v == "warn" || v == "warning" || v == "2")
        return static_cast<int>(LogLevel::Warn);
    if (v == "error" || v == "3")
        return static_cast<int>(LogLevel::Error);
    if (v == "off" || v == "none" || v == "4")
        return static_cast<int>(LogLevel::Off);
    return static_cast<int>(LogLevel::Info);
}

/** Level filter: relaxed atomic so the logEnabled() pre-check costs
 *  one load on paths that end up emitting nothing. */
std::atomic<int> &
levelVar()
{
    static std::atomic<int> level{initialLevel()};
    return level;
}

/** Sink + the lock that serializes every emission through it. */
struct SinkState
{
    std::mutex mtx;
    LogSink sink; ///< empty = default stderr sink
};

SinkState &
sinkState()
{
    static SinkState s;
    return s;
}

void
defaultSink(LogLevel, std::string_view line)
{
    // One fwrite per line: even if a foreign thread writes stderr
    // concurrently, this line lands contiguously.
    std::string buf(line);
    buf.push_back('\n');
    std::fwrite(buf.data(), 1, buf.size(), stderr);
}

} // namespace

void
setLogSink(LogSink sink)
{
    SinkState &s = sinkState();
    std::lock_guard<std::mutex> lock(s.mtx);
    s.sink = std::move(sink);
}

void
setLogLevel(LogLevel level)
{
    levelVar().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        levelVar().load(std::memory_order_relaxed));
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) >=
           levelVar().load(std::memory_order_relaxed);
}

void
logLine(LogLevel level, std::string line)
{
    if (!logEnabled(level))
        return;
    SinkState &s = sinkState();
    // The lock both protects the sink pointer and serializes sink
    // calls, which is what lets sinks skip their own locking.
    std::lock_guard<std::mutex> lock(s.mtx);
    if (s.sink)
        s.sink(level, line);
    else
        defaultSink(level, line);
}

} // namespace halo
