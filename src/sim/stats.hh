/**
 * @file
 * Lightweight statistics framework in the spirit of the gem5 Stats package.
 *
 * Components register named statistics inside a StatGroup; benches and
 * tests read them back by name or via typed references. Everything is
 * header-light and allocation-cheap because stats are bumped on the
 * simulator fast path (every cache access).
 *
 * Threading contract: Counter/Average/Histogram/StatGroup are plain
 * (non-atomic) and deliberately stay that way — each simulated shard is
 * single-threaded, and making every cache-access bump atomic would tax
 * the simulator fast path for nothing. They must only be touched by the
 * thread that owns the shard; in particular StatGroup::counter() can
 * rehash its map, so even concurrent *reads* from another thread are a
 * data race. Cross-thread aggregation (the multi-worker runtime's stats
 * reduction) goes through PublishedCounter below: workers publish with
 * relaxed atomic stores after each batch, and any thread may snapshot
 * the published values at any time without locks.
 */

#ifndef HALO_SIM_STATS_HH
#define HALO_SIM_STATS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace halo {

/** Monotonic event counter. */
class Counter
{
  public:
    void operator++() { ++count; }
    void operator++(int) { ++count; }
    void operator+=(std::uint64_t n) { count += n; }
    std::uint64_t value() const { return count; }
    void reset() { count = 0; }

  private:
    std::uint64_t count = 0;
};

/**
 * Single-writer counter whose value may be read from any thread.
 *
 * The owning thread accumulates with add(); because there is exactly
 * one writer, the update is a relaxed load+store pair rather than an
 * atomic RMW, so publishing costs no more than a plain increment plus
 * a store on x86. Readers on other threads see an eventually-consistent
 * monotonic snapshot — relaxed ordering is sufficient because snapshots
 * carry no synchronization obligations (the final, exact reduction
 * happens after the owning thread is joined, which orders everything).
 */
class PublishedCounter
{
  public:
    PublishedCounter() = default;
    PublishedCounter(const PublishedCounter &) = delete;
    PublishedCounter &operator=(const PublishedCounter &) = delete;

    /** Owner thread only. */
    void
    add(std::uint64_t n)
    {
        v.store(v.load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
    }

    /** Any thread. */
    std::uint64_t value() const { return v.load(std::memory_order_relaxed); }

    /**
     * Owner thread only: publish an absolute value. For mirrored
     * counters whose source of truth is a plain writer-owned variable
     * (e.g. a table's item count, which both increments and
     * decrements), set() republishes the current value instead of
     * accumulating deltas.
     */
    void set(std::uint64_t n) { v.store(n, std::memory_order_relaxed); }

    /** Owner thread only, and only while no reader expects
     *  monotonicity (e.g. between runs). */
    void reset() { v.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v{0};
};

/** Running mean/min/max of a sampled quantity. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum += v;
        ++n;
        if (v < minV || n == 1)
            minV = v;
        if (v > maxV || n == 1)
            maxV = v;
    }

    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    double min() const { return n ? minV : 0.0; }
    double max() const { return n ? maxV : 0.0; }
    std::uint64_t samples() const { return n; }
    double total() const { return sum; }

    void
    reset()
    {
        sum = 0;
        n = 0;
        minV = 0;
        maxV = 0;
    }

  private:
    double sum = 0.0;
    double minV = 0.0;
    double maxV = 0.0;
    std::uint64_t n = 0;
};

/**
 * Fixed-bucket histogram over [lo, hi); out-of-range samples land in
 * saturating underflow/overflow buckets.
 *
 * Saturation semantics: a sample below @p lo is counted in the
 * underflow bucket and thereafter *behaves as if its value were
 * exactly lo*; a sample at or above @p hi is counted in the overflow
 * bucket and behaves as if it were hi. In particular percentile()
 * returns lo for any rank that falls into the underflow mass and hi
 * for any rank in the overflow mass — the true magnitude of
 * out-of-range samples is not retained. Size the [lo, hi) range to
 * cover the distribution if the tails matter (or use
 * obs::HdrHistogram, which covers the full uint64 range).
 */
class Histogram
{
  public:
    Histogram() : Histogram(0.0, 1.0, 1) {}

    Histogram(double lo, double hi, unsigned buckets)
        : low(lo), high(hi), counts(buckets, 0)
    {
        HALO_ASSERT(buckets > 0 && hi > lo);
    }

    void
    sample(double v)
    {
        ++total_;
        if (v < low) {
            ++underflow_;
            return;
        }
        if (v >= high) {
            ++overflow_;
            return;
        }
        const double frac = (v - low) / (high - low);
        auto idx = static_cast<std::size_t>(frac * counts.size());
        if (idx >= counts.size())
            idx = counts.size() - 1;
        ++counts[idx];
    }

    std::uint64_t bucket(std::size_t i) const { return counts.at(i); }
    std::size_t buckets() const { return counts.size(); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /**
     * Value at quantile @p q in [0, 1], linearly interpolated within
     * the containing bucket. Underflow/overflow ranks saturate to lo
     * and hi respectively (see the class comment); an empty histogram
     * returns lo.
     */
    double
    percentile(double q) const
    {
        if (total_ == 0)
            return low;
        if (q < 0.0)
            q = 0.0;
        if (q > 1.0)
            q = 1.0;
        // 1-based rank of the q-th sample: ceil(q * total).
        const double exact = q * static_cast<double>(total_);
        std::uint64_t rank = static_cast<std::uint64_t>(exact);
        if (static_cast<double>(rank) < exact)
            ++rank;
        if (rank == 0)
            rank = 1;

        if (rank <= underflow_)
            return low; // saturated below the range
        std::uint64_t cum = underflow_;
        const double width =
            (high - low) / static_cast<double>(counts.size());
        for (std::size_t i = 0; i < counts.size(); ++i) {
            const std::uint64_t c = counts[i];
            if (c == 0)
                continue;
            if (cum + c >= rank) {
                const double frac =
                    (static_cast<double>(rank - cum) - 0.5) /
                    static_cast<double>(c);
                return low + (static_cast<double>(i) + frac) * width;
            }
            cum += c;
        }
        return high; // saturated above the range
    }

  private:
    double low;
    double high;
    std::vector<std::uint64_t> counts;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * A named collection of statistics owned by a simulated component.
 *
 * Unlike gem5 we keep ownership in the group itself (components hold
 * references), which keeps reset/dump logic in one place.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name) : name_(std::move(group_name))
    {
    }

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register (or fetch) a counter called @p stat_name. */
    Counter &
    counter(const std::string &stat_name)
    {
        return counters_[stat_name];
    }

    /** Register (or fetch) a running average called @p stat_name. */
    Average &
    average(const std::string &stat_name)
    {
        return averages_[stat_name];
    }

    /** Read a counter; panics if it was never registered. */
    std::uint64_t
    counterValue(const std::string &stat_name) const
    {
        auto it = counters_.find(stat_name);
        HALO_ASSERT(it != counters_.end(), "no counter ", stat_name);
        return it->second.value();
    }

    /** True when a counter with this name exists. */
    bool
    hasCounter(const std::string &stat_name) const
    {
        return counters_.count(stat_name) != 0;
    }

    /** @name Enumeration (metric exposition, dumps)
     *  Visits statistics in name order. Only from the owning thread,
     *  or after it has quiesced (see the file threading contract). */
    /**@{*/
    template <typename Fn>
    void
    forEachCounter(Fn &&fn) const
    {
        for (const auto &kv : counters_)
            fn(kv.first, kv.second);
    }

    template <typename Fn>
    void
    forEachAverage(Fn &&fn) const
    {
        for (const auto &kv : averages_)
            fn(kv.first, kv.second);
    }
    /**@}*/

    /** Reset every statistic in the group. */
    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second.reset();
        for (auto &kv : averages_)
            kv.second.reset();
    }

    /** Render all stats as "group.stat value" lines. */
    std::string dump() const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Average> averages_;
};

} // namespace halo

#endif // HALO_SIM_STATS_HH
