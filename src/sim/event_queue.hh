/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The memory-system fast path uses analytic resource-reservation timing
 * (see mem/), but stateful components that need callbacks at future
 * cycles — the flow-register scan window, DRAM refresh in tests, traffic
 * arrival processes — schedule events here.
 */

#ifndef HALO_SIM_EVENT_QUEUE_HH
#define HALO_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace halo {

/**
 * A time-ordered queue of callbacks. Events scheduled for the same cycle
 * fire in scheduling order (FIFO), matching gem5's same-tick semantics.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Cycles now() const { return currentCycle; }

    /** Number of events not yet executed. */
    std::size_t pending() const { return heap.size(); }

    /**
     * Schedule @p cb to run at absolute cycle @p when.
     * Scheduling in the past is a simulator bug.
     * @return a ticket usable with cancel().
     */
    std::uint64_t
    schedule(Cycles when, Callback cb)
    {
        HALO_ASSERT(when >= currentCycle, "event scheduled in the past");
        const std::uint64_t ticket = nextTicket++;
        heap.push(Entry{when, ticket, std::move(cb), false});
        return ticket;
    }

    /** Schedule @p cb to run @p delay cycles from now. */
    std::uint64_t
    scheduleIn(Cycles delay, Callback cb)
    {
        return schedule(currentCycle + delay, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event. Cancelling an already-fired or
     * unknown ticket is a no-op (returns false).
     */
    bool
    cancel(std::uint64_t ticket)
    {
        // Lazy cancellation: mark and skip at pop time.
        cancelled.push_back(ticket);
        return true;
    }

    /**
     * Run events until the queue drains or @p limit cycles elapse.
     * @return the cycle of the last executed event.
     */
    Cycles
    run(Cycles limit = foreverCycles)
    {
        while (!heap.empty()) {
            Entry top = heap.top();
            if (top.when > limit)
                break;
            heap.pop();
            if (isCancelled(top.ticket))
                continue;
            HALO_ASSERT(top.when >= currentCycle, "time went backwards");
            currentCycle = top.when;
            top.cb();
        }
        return currentCycle;
    }

    /** Execute exactly one event if any is pending within @p limit. */
    bool
    step(Cycles limit = foreverCycles)
    {
        while (!heap.empty()) {
            Entry top = heap.top();
            if (top.when > limit)
                return false;
            heap.pop();
            if (isCancelled(top.ticket))
                continue;
            currentCycle = top.when;
            top.cb();
            return true;
        }
        return false;
    }

    /** Advance the clock without executing anything (idle time). */
    void
    advanceTo(Cycles when)
    {
        HALO_ASSERT(when >= currentCycle, "cannot rewind simulated time");
        currentCycle = when;
    }

  private:
    struct Entry
    {
        Cycles when;
        std::uint64_t ticket;
        Callback cb;
        bool dead;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return ticket > other.ticket;
        }
    };

    bool
    isCancelled(std::uint64_t ticket)
    {
        for (auto it = cancelled.begin(); it != cancelled.end(); ++it) {
            if (*it == ticket) {
                cancelled.erase(it);
                return true;
            }
        }
        return false;
    }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    std::vector<std::uint64_t> cancelled;
    Cycles currentCycle = 0;
    std::uint64_t nextTicket = 0;
};

} // namespace halo

#endif // HALO_SIM_EVENT_QUEUE_HH
