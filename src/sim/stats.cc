#include "sim/stats.hh"

#include <sstream>

namespace halo {

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << name_ << '.' << kv.first << ' ' << kv.second.value() << '\n';
    for (const auto &kv : averages_) {
        os << name_ << '.' << kv.first << ".mean " << kv.second.mean()
           << '\n';
        os << name_ << '.' << kv.first << ".samples "
           << kv.second.samples() << '\n';
    }
    return os.str();
}

} // namespace halo
