/**
 * @file
 * Unit tests for the linear-counting flow register and the hybrid
 * controller (paper SS4.6, Fig. 8).
 */

#include <gtest/gtest.h>

#include "core/flow_register.hh"
#include "core/hybrid.hh"
#include "sim/random.hh"

namespace halo {
namespace {

TEST(FlowRegister, EmptyEstimatesZero)
{
    FlowRegister reg(32);
    EXPECT_DOUBLE_EQ(reg.estimate(), 0.0);
    EXPECT_EQ(reg.unsetBits(), 32u);
}

TEST(FlowRegister, SingleFlowEstimatesNearOne)
{
    FlowRegister reg(32);
    for (int i = 0; i < 100; ++i)
        reg.observe(0x12345);
    EXPECT_NEAR(reg.estimate(), 1.0, 0.2);
}

TEST(FlowRegister, EstimateAccurateUpToTwiceBits)
{
    // Fig. 8b: a register estimates ~2x its bit count reliably.
    Xoshiro256 rng(42);
    for (const unsigned bits : {32u, 64u, 128u, 256u}) {
        for (unsigned flows = bits / 4; flows <= 2 * bits;
             flows += bits / 4) {
            double total_err = 0;
            const int trials = 20;
            for (int trial = 0; trial < trials; ++trial) {
                FlowRegister reg(bits);
                for (unsigned f = 0; f < flows; ++f) {
                    const std::uint64_t h = rng.next();
                    // Each flow hashes to a stable value; replay a few
                    // packets of it.
                    reg.observe(h);
                    reg.observe(h);
                }
                total_err += std::abs(reg.estimate() -
                                      static_cast<double>(flows)) /
                             static_cast<double>(flows);
            }
            EXPECT_LT(total_err / trials, 0.30)
                << bits << " bits @ " << flows << " flows";
        }
    }
}

TEST(FlowRegister, SaturatesGracefully)
{
    FlowRegister reg(32);
    Xoshiro256 rng(1);
    for (int i = 0; i < 100000; ++i)
        reg.observe(rng.next());
    EXPECT_EQ(reg.unsetBits(), 0u);
    EXPECT_DOUBLE_EQ(reg.estimate(), reg.saturationBound());
}

TEST(FlowRegister, ScanAndResetClearsWindow)
{
    FlowRegister reg(32);
    reg.observe(7);
    const double est = reg.scanAndReset();
    EXPECT_GT(est, 0.0);
    EXPECT_DOUBLE_EQ(reg.estimate(), 0.0);
}

TEST(Hybrid, StartsInConfiguredMode)
{
    HybridController ctl;
    EXPECT_EQ(ctl.mode(), ComputeMode::Halo);
    HybridController::Config cfg;
    cfg.initialMode = ComputeMode::Software;
    HybridController ctl2(cfg);
    EXPECT_EQ(ctl2.mode(), ComputeMode::Software);
}

TEST(Hybrid, SwitchesToSoftwareForFewFlows)
{
    HybridController::Config cfg;
    cfg.windowQueries = 256;
    HybridController ctl(cfg);
    // 8 distinct flows, many packets each.
    for (int i = 0; i < 1000; ++i)
        ctl.observe(0x1000 + static_cast<std::uint64_t>(i % 8) * 0x77);
    EXPECT_GT(ctl.windowsClosed(), 0u);
    EXPECT_EQ(ctl.mode(), ComputeMode::Software);
    EXPECT_LT(ctl.estimate(), 64.0);
}

TEST(Hybrid, SwitchesToHaloForManyFlows)
{
    HybridController::Config cfg;
    cfg.windowQueries = 512;
    cfg.initialMode = ComputeMode::Software;
    HybridController ctl(cfg);
    Xoshiro256 rng(9);
    for (int i = 0; i < 2000; ++i)
        ctl.observe(rng.next()); // thousands of distinct flows
    EXPECT_EQ(ctl.mode(), ComputeMode::Halo);
}

TEST(Hybrid, OscillatesWithTraffic)
{
    HybridController::Config cfg;
    cfg.windowQueries = 128;
    HybridController ctl(cfg);
    Xoshiro256 rng(3);
    // Busy phase.
    for (int i = 0; i < 256; ++i)
        ctl.observe(rng.next());
    EXPECT_EQ(ctl.mode(), ComputeMode::Halo);
    // Quiet phase: 4 flows only.
    for (int i = 0; i < 256; ++i)
        ctl.observe(static_cast<std::uint64_t>(i % 4) * 1234567);
    EXPECT_EQ(ctl.mode(), ComputeMode::Software);
}

} // namespace
} // namespace halo
