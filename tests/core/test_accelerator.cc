/**
 * @file
 * Unit tests for the HALO accelerator, distributor, and system façade.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/halo_system.hh"
#include "hash/cuckoo_table.hh"
#include "sim/random.hh"

namespace halo {
namespace {

struct Rig
{
    SimMemory mem{512ull << 20};
    MemoryHierarchy hier;
    HaloSystem halo{mem, hier};

    CuckooHashTable
    makeTable(std::uint64_t capacity, std::uint64_t seed = 5)
    {
        return CuckooHashTable(
            mem, {16, capacity, HashKind::XxMix, seed, 0.95});
    }

    Addr
    stageKey(const std::vector<std::uint8_t> &key)
    {
        static Addr slot = 0;
        if (slot == 0)
            slot = mem.allocate(64 * cacheLineBytes, cacheLineBytes);
        const Addr a = slot;
        mem.write(a, key.data(), key.size());
        hier.warmLine(a);
        return a;
    }
};

std::vector<std::uint8_t>
makeKey(std::uint64_t id)
{
    std::vector<std::uint8_t> key(16, 0);
    std::memcpy(key.data(), &id, 8);
    return key;
}

TEST(Accelerator, FunctionalLookupMatchesSoftware)
{
    Rig rig;
    auto table = rig.makeTable(4096);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const auto key = makeKey(i);
        ASSERT_TRUE(table.insert(KeyView(key), i * 3 + 1));
    }
    // Every present key is found with the right value; absent keys miss.
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const auto key = makeKey(i);
        const QueryResult r = rig.halo.rawQuery(
            0, table.metadataAddr(), rig.stageKey(key), 0);
        ASSERT_TRUE(r.found) << "key " << i;
        EXPECT_EQ(r.value, i * 3 + 1);
    }
    for (std::uint64_t i = 2000; i < 2100; ++i) {
        const auto key = makeKey(i);
        const QueryResult r = rig.halo.rawQuery(
            0, table.metadataAddr(), rig.stageKey(key), 0);
        EXPECT_FALSE(r.found);
    }
}

TEST(Accelerator, MetadataCacheHitsAfterFirstQuery)
{
    Rig rig;
    auto table = rig.makeTable(256);
    const auto key = makeKey(1);
    table.insert(KeyView(key), 7);
    const Addr key_addr = rig.stageKey(key);

    const SliceId target =
        rig.halo.distributor().route(table.metadataAddr(), key_addr);
    auto &acc = rig.halo.accelerator(target);
    rig.halo.rawQuery(0, table.metadataAddr(), key_addr, 0);
    EXPECT_EQ(acc.stats().counterValue("metadata_misses"), 1u);
    rig.halo.rawQuery(0, table.metadataAddr(), key_addr, 1000);
    EXPECT_EQ(acc.stats().counterValue("metadata_misses"), 1u);
    EXPECT_GE(acc.stats().counterValue("metadata_hits"), 1u);
}

TEST(Accelerator, MetadataCacheEvictsBeyondTenTables)
{
    Rig rig;
    std::vector<CuckooHashTable> tables;
    tables.reserve(24);
    for (int t = 0; t < 24; ++t)
        tables.push_back(rig.makeTable(64, 100 + t));
    const auto key = makeKey(1);
    const Addr key_addr = rig.stageKey(key);

    // Force all tables onto one accelerator by querying it directly.
    auto &acc = rig.halo.accelerator(0);
    for (auto &t : tables)
        acc.execute(t.metadataAddr(), key_addr, 0);
    const auto misses_first =
        acc.stats().counterValue("metadata_misses");
    EXPECT_EQ(misses_first, 24u);
    // Re-touch the first table: with only 10 entries it must have been
    // evicted.
    acc.execute(tables.front().metadataAddr(), key_addr, 0);
    EXPECT_EQ(acc.stats().counterValue("metadata_misses"), 25u);
}

TEST(Accelerator, InvalidateMetadataForcesRefetch)
{
    Rig rig;
    auto table = rig.makeTable(256);
    const auto key = makeKey(2);
    table.insert(KeyView(key), 1);
    const Addr key_addr = rig.stageKey(key);
    auto &acc = rig.halo.accelerator(3);
    acc.execute(table.metadataAddr(), key_addr, 0);
    acc.invalidateMetadata(table.metadataAddr());
    acc.execute(table.metadataAddr(), key_addr, 0);
    EXPECT_EQ(acc.stats().counterValue("metadata_misses"), 2u);
}

TEST(Accelerator, QueryAgainstGarbageAddressPanics)
{
    Rig rig;
    const Addr bogus = rig.mem.allocate(64);
    const auto key = makeKey(1);
    EXPECT_THROW(rig.halo.rawQuery(0, bogus, rig.stageKey(key), 0),
                 PanicError);
}

TEST(Accelerator, ScoreboardProvidesBackpressure)
{
    Rig rig;
    auto table = rig.makeTable(4096);
    for (std::uint64_t i = 0; i < 100; ++i) {
        const auto key = makeKey(i);
        table.insert(KeyView(key), i);
    }
    auto &acc = rig.halo.accelerator(0);
    // Saturate the scoreboard with same-cycle arrivals.
    Cycles last_accept = 0;
    for (std::uint64_t i = 0; i < 40; ++i) {
        const auto key = makeKey(i % 100);
        const QueryResult r =
            acc.execute(table.metadataAddr(), rig.stageKey(key), 0);
        last_accept = std::max(last_accept, r.accepted);
    }
    // With a 10-deep scoreboard, the 40th same-cycle query cannot be
    // accepted at time 0.
    EXPECT_GT(last_accept, 0u);
}

TEST(Accelerator, EngineSerializesQueries)
{
    Rig rig;
    auto table = rig.makeTable(256);
    const auto key = makeKey(3);
    table.insert(KeyView(key), 1);
    const Addr key_addr = rig.stageKey(key);
    auto &acc = rig.halo.accelerator(1);
    const QueryResult a = acc.execute(table.metadataAddr(), key_addr, 0);
    const QueryResult b = acc.execute(table.metadataAddr(), key_addr, 0);
    EXPECT_GE(b.finished, a.finished);
    EXPECT_GT(b.breakdown.queueing, 0u);
}

TEST(Accelerator, LocksAreReleasedAfterQuery)
{
    Rig rig;
    auto table = rig.makeTable(256);
    const auto key = makeKey(4);
    table.insert(KeyView(key), 1);
    rig.halo.rawQuery(0, table.metadataAddr(), rig.stageKey(key), 0);
    // No line of the table may remain locked.
    table.forEachLine([&](Addr a) {
        EXPECT_FALSE(rig.hier.isLineLocked(a));
    });
}

TEST(Accelerator, BreakdownPhasesArePopulated)
{
    Rig rig;
    auto table = rig.makeTable(256);
    const auto key = makeKey(5);
    table.insert(KeyView(key), 1);
    table.forEachLine([&](Addr a) { rig.hier.warmLine(a); });
    // Query the accelerator directly with arrival 0 so the breakdown
    // must account for every cycle up to completion.
    const QueryResult r = rig.halo.accelerator(2).execute(
        table.metadataAddr(), rig.stageKey(key), 0);
    EXPECT_TRUE(r.found);
    EXPECT_GT(r.breakdown.compute, 0u);
    EXPECT_GT(r.breakdown.dataAccess, 0u);
    EXPECT_GT(r.breakdown.keyFetch, 0u);
    EXPECT_GT(r.breakdown.locking, 0u);
    EXPECT_EQ(r.finished, r.breakdown.total());
}

TEST(Accelerator, HardwareLockCanBeDisabled)
{
    Rig rig;
    HaloConfig cfg;
    cfg.useHardwareLock = false;
    HaloSystem halo(rig.mem, rig.hier, cfg);
    auto table = rig.makeTable(256);
    const auto key = makeKey(6);
    table.insert(KeyView(key), 1);
    const QueryResult r =
        halo.rawQuery(0, table.metadataAddr(), rig.stageKey(key), 0);
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.breakdown.locking, 0u);
}

TEST(Distributor, TableHashIsStable)
{
    QueryDistributor d(16, DispatchPolicy::TableHash);
    const SliceId s1 = d.route(0x1000, 0x2000);
    const SliceId s2 = d.route(0x1000, 0x9999);
    EXPECT_EQ(s1, s2); // key address irrelevant under TableHash
    EXPECT_LT(s1, 16u);
}

TEST(Distributor, PoliciesSpreadLoad)
{
    for (const auto policy :
         {DispatchPolicy::TableHash, DispatchPolicy::KeyHash,
          DispatchPolicy::RoundRobin}) {
        QueryDistributor d(16, policy);
        std::vector<unsigned> counts(16, 0);
        for (std::uint64_t i = 0; i < 1600; ++i)
            ++counts[d.route(0x1000 + i * 640, 0x2000 + i * 64)];
        unsigned used = 0;
        for (unsigned c : counts)
            used += c > 0 ? 1 : 0;
        EXPECT_GE(used, 12u) << "policy "
                             << static_cast<int>(policy);
    }
}

TEST(HaloSystem, TransferLatencyGrowsWithDistance)
{
    Rig rig;
    // Core 0 sits at tile 0; slice 15 is across the mesh.
    EXPECT_GT(rig.halo.transferLatency(0, 15),
              rig.halo.transferLatency(0, 0));
}

TEST(HaloSystem, FlowRegisterSeesQueries)
{
    Rig rig;
    auto table = rig.makeTable(4096);
    for (std::uint64_t i = 0; i < 600; ++i) {
        const auto key = makeKey(i);
        table.insert(KeyView(key), i);
    }
    Xoshiro256 rng(4);
    for (int i = 0; i < 2000; ++i) {
        const auto key = makeKey(rng.nextBounded(600));
        rig.halo.rawQuery(0, table.metadataAddr(), rig.stageKey(key),
                          static_cast<Cycles>(i) * 100);
    }
    // 600 active flows >> 64 threshold: hybrid stays in HALO mode.
    EXPECT_EQ(rig.halo.hybrid().mode(), ComputeMode::Halo);
    EXPECT_GT(rig.halo.totalQueries(), 0u);
}

} // namespace
} // namespace halo
