/**
 * @file
 * Tests for the LOOKUP_B / LOOKUP_NB / SNAPSHOT_READ instruction
 * semantics driven through the CoreModel (paper SS4.5).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/halo_system.hh"
#include "cpu/trace_builder.hh"
#include "hash/cuckoo_table.hh"

namespace halo {
namespace {

struct IsaRig
{
    SimMemory mem{256ull << 20};
    MemoryHierarchy hier;
    HaloSystem halo{mem, hier};
    CoreModel core{hier, 0};
    TraceBuilder builder;
    CuckooHashTable table{
        mem, CuckooHashTable::Config{16, 4096, HashKind::XxMix, 1, 0.95}};
    Addr keys = 0;
    Addr results = 0;

    IsaRig()
    {
        core.setLookupEngine(&halo);
        keys = mem.allocate(64 * cacheLineBytes, cacheLineBytes);
        results = mem.allocate(8 * cacheLineBytes, cacheLineBytes);
        for (std::uint64_t i = 0; i < 512; ++i) {
            std::uint8_t key[16] = {};
            std::memcpy(key, &i, 8);
            table.insert(KeyView(key, 16), i + 100);
        }
        table.forEachLine([this](Addr a) { hier.warmLine(a); });
    }

    Addr
    stageKey(std::uint64_t id, unsigned slot)
    {
        std::uint8_t key[16] = {};
        std::memcpy(key, &id, 8);
        const Addr a = keys + slot * cacheLineBytes;
        mem.write(a, key, 16);
        hier.warmLine(a);
        return a;
    }
};

TEST(LookupIsa, BlockingLookupReturnsInBoundedTime)
{
    IsaRig rig;
    OpTrace ops;
    rig.builder.lowerLookupB(rig.table.metadataAddr(),
                             rig.stageKey(5, 0), ops);
    const RunResult r = rig.core.run(ops);
    // Round trip: dispatch + query + return, well under a DRAM miss
    // chain but far above an L1 hit.
    EXPECT_GT(r.elapsed(), 30u);
    EXPECT_LT(r.elapsed(), 250u);
    EXPECT_EQ(r.mix.lookups, 1u);
}

TEST(LookupIsa, NonBlockingWritesResultWord)
{
    IsaRig rig;
    rig.mem.zero(rig.results, cacheLineBytes);
    OpTrace ops;
    rig.builder.lowerLookupNB(rig.table.metadataAddr(),
                              rig.stageKey(7, 0), rig.results, ops);
    const RunResult r = rig.core.run(ops);
    EXPECT_GT(r.lastNbReady, 0u);
    EXPECT_EQ(rig.mem.load<std::uint64_t>(rig.results), 107u);
}

TEST(LookupIsa, NonBlockingMissWritesMissMarker)
{
    IsaRig rig;
    rig.mem.zero(rig.results, cacheLineBytes);
    OpTrace ops;
    rig.builder.lowerLookupNB(rig.table.metadataAddr(),
                              rig.stageKey(99999, 0), rig.results, ops);
    rig.core.run(ops);
    EXPECT_EQ(rig.mem.load<std::uint64_t>(rig.results), nbMissWord);
}

TEST(LookupIsa, NonBlockingCheaperThanBlockingOnCore)
{
    IsaRig rig;
    OpTrace blocking, nonblocking;
    for (unsigned i = 0; i < 16; ++i) {
        rig.builder.lowerLookupB(rig.table.metadataAddr(),
                                 rig.stageKey(i, i % 32), blocking);
    }
    for (unsigned i = 0; i < 16; ++i) {
        rig.builder.lowerLookupNB(rig.table.metadataAddr(),
                                  rig.stageKey(i, 32 + i % 32),
                                  rig.results + (i % 8) * 8,
                                  nonblocking);
    }
    const Cycles b = rig.core.run(blocking).elapsed();
    rig.halo.drainAll();
    const Cycles nb = rig.core.run(nonblocking).elapsed();
    // The NB issue stream retires without waiting for results.
    EXPECT_LT(nb, b);
}

TEST(LookupIsa, BatchedNbCompletionViaSnapshot)
{
    IsaRig rig;
    rig.mem.zero(rig.results, cacheLineBytes);
    rig.hier.warmLine(rig.results);

    OpTrace ops;
    for (unsigned i = 0; i < 8; ++i) {
        rig.builder.lowerLookupNB(rig.table.metadataAddr(),
                                  rig.stageKey(i, i), rig.results + i * 8,
                                  ops);
    }
    const RunResult issue = rig.core.run(ops);

    // Poll with SNAPSHOT_READ until the ready time passes.
    Cycles now = issue.endCycle;
    unsigned polls = 0;
    while (now < issue.lastNbReady) {
        OpTrace check;
        rig.builder.lowerSnapshotCheck(rig.results, check);
        now = rig.core.run(check, now).endCycle;
        ++polls;
    }
    EXPECT_GT(polls, 0u);
    // All 8 result words are non-zero now.
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_NE(rig.mem.load<std::uint64_t>(rig.results + i * 8), 0u);
}

TEST(LookupIsa, SnapshotReadDoesNotDirtyLine)
{
    IsaRig rig;
    rig.hier.warmLine(rig.results);
    OpTrace check;
    rig.builder.lowerSnapshotCheck(rig.results, check);
    rig.core.run(check);
    // The result line must still be LLC-resident and unowned (a normal
    // read would have pulled it into L1/L2 as well; SNAPSHOT_READ's
    // timing does that too in this model, but it must never mark it
    // dirty).
    const SliceId s = rig.hier.sliceOf(rig.results);
    EXPECT_TRUE(rig.hier.llcSlice(s).contains(rig.results));
}

TEST(LookupIsa, BackToBackBlockingLookupsOverlapInWindow)
{
    // LOOKUP_B behaves like a long-latency load: independent lookups
    // from one core overlap inside the OoO window, so 8 of them finish
    // in far less than 8x one round trip.
    IsaRig rig;
    OpTrace one;
    rig.builder.lowerLookupB(rig.table.metadataAddr(),
                             rig.stageKey(1, 0), one);
    const Cycles single = rig.core.run(one).elapsed();
    rig.halo.drainAll();

    OpTrace eight;
    for (unsigned i = 0; i < 8; ++i)
        rig.builder.lowerLookupB(rig.table.metadataAddr(),
                                 rig.stageKey(i, i), eight);
    const Cycles batch = rig.core.run(eight).elapsed();
    EXPECT_LT(batch, 8 * single);
}

} // namespace
} // namespace halo
