/**
 * @file
 * Property test: for every supported hash kind and key length, the
 * HALO accelerator's functional result equals the software table's for
 * hits, misses, and post-update lookups. This is the repository's
 * central invariant — the accelerator walks the same self-describing
 * bytes the software does.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/halo_system.hh"
#include "cpu/core_model.hh"
#include "cpu/trace_builder.hh"
#include "hash/cuckoo_table.hh"
#include "hash/hash_fn.hh"
#include "hash/table_layout.hh"
#include "sim/random.hh"

namespace halo {
namespace {

class EquivalenceParam
    : public ::testing::TestWithParam<
          std::tuple<HashKind, std::uint32_t, DispatchPolicy>>
{
};

std::vector<std::uint8_t>
makeKey(std::uint64_t id, std::uint32_t len)
{
    std::vector<std::uint8_t> key(len, 0);
    std::memcpy(key.data(), &id, sizeof(id));
    if (len > 8)
        key[len - 1] = static_cast<std::uint8_t>(id * 131);
    return key;
}

TEST_P(EquivalenceParam, AcceleratorMatchesSoftwareThroughChurn)
{
    const auto [kind, key_len, policy] = GetParam();
    SimMemory mem(256ull << 20);
    MemoryHierarchy hier;
    HaloConfig hcfg;
    hcfg.dispatchPolicy = policy;
    HaloSystem halo(mem, hier, hcfg);
    CuckooHashTable table(
        mem, {key_len, 2048, kind,
              0x1234 + static_cast<std::uint64_t>(kind), 0.95});
    const Addr key_stage = mem.allocate(cacheLineBytes, cacheLineBytes);

    Xoshiro256 rng(static_cast<std::uint64_t>(kind) * 100 + key_len);
    Cycles when = 0;
    for (int op = 0; op < 1200; ++op) {
        const std::uint64_t id = rng.nextBounded(700);
        const auto key = makeKey(id, key_len);
        const int what = static_cast<int>(rng.nextBounded(10));
        if (what < 4) {
            table.insert(KeyView(key.data(), key.size()),
                         rng.next() | 1);
        } else if (what < 5) {
            table.erase(KeyView(key.data(), key.size()));
        } else {
            mem.write(key_stage, key.data(), key.size());
            hier.warmLine(key_stage);
            const QueryResult qr = halo.rawQuery(
                0, table.metadataAddr(), key_stage, when += 400);
            const auto sw = table.lookup(KeyView(key.data(),
                                                 key.size()));
            ASSERT_EQ(qr.found, sw.has_value())
                << "op " << op << " id " << id;
            if (sw)
                ASSERT_EQ(qr.value, *sw);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    KindsKeysPolicies, EquivalenceParam,
    ::testing::Combine(
        ::testing::Values(HashKind::Crc32c, HashKind::Jenkins,
                          HashKind::XxMix),
        ::testing::Values(8u, 13u, 16u, 32u, 64u),
        ::testing::Values(DispatchPolicy::TableHash,
                          DispatchPolicy::KeyHash)));

/**
 * Reference reconstruction of a cuckoo lookup's access trace, written
 * against the *recorded* semantics the timing models rely on (what the
 * seed tree's byte-at-a-time lookup produced): metadata, version
 * sample, key fetch, bucket line, one kv probe per signature match
 * until the key matches, optional second bucket, version re-sample.
 * Reads table state only through SimMemory::read, deliberately not
 * through any host fast path.
 */
AccessTrace
referenceLookupTrace(const SimMemory &mem, const CuckooHashTable &table,
                     KeyView key, Addr key_addr)
{
    const TableMetadata &md = table.metadata();
    AccessTrace t;
    auto ref = [&](Addr addr, std::uint16_t size, AccessPhase phase,
                   bool depends) {
        t.push_back(MemRef{addr, size, false, phase, depends,
                           md.numBuckets <= 8});
        // Metadata/Lock/KeyFetch refs predate the branch-entropy logic.
        if (phase == AccessPhase::Metadata ||
            phase == AccessPhase::Lock || phase == AccessPhase::KeyFetch)
            t.back().lowEntropyBranch = false;
    };
    ref(table.metadataAddr(), cacheLineBytes, AccessPhase::Metadata,
        false);
    ref(table.versionAddr(), 8, AccessPhase::Lock, false);
    ref(key_addr, static_cast<std::uint16_t>(md.keyLen),
        AccessPhase::KeyFetch, false);

    const std::uint64_t h = hashBytes(
        static_cast<HashKind>(md.hashKind), md.seed, key);
    const std::uint32_t sig = shortSignature(h);
    const std::uint64_t b1 = h & md.bucketMask;
    const std::uint64_t b2 = alternativeBucket(b1, sig, md.bucketMask);

    bool found = false;
    auto scanBucket = [&](std::uint64_t bucket) {
        for (unsigned way = 0; way < entriesPerBucket && !found; ++way) {
            BucketEntry entry;
            mem.read(bucketEntryAddr(md, bucket, way), &entry,
                     sizeof(entry));
            if (entry.kvRef == 0 || entry.sig != sig)
                continue;
            ref(kvSlotAddr(md, entry.kvRef - 1),
                static_cast<std::uint16_t>(md.kvSlotBytes),
                AccessPhase::KeyValue, true);
            std::uint8_t stored[64];
            mem.read(kvSlotAddr(md, entry.kvRef - 1) + kvKeyOffset,
                     stored, md.keyLen);
            found = std::memcmp(stored, key.data(), md.keyLen) == 0;
        }
    };
    ref(bucketAddr(md, b1), cacheLineBytes, AccessPhase::Bucket, true);
    scanBucket(b1);
    if (!found && b2 != b1) {
        ref(bucketAddr(md, b2), cacheLineBytes, AccessPhase::Bucket,
            false);
        scanBucket(b2);
    }
    ref(table.versionAddr(), 8, AccessPhase::Lock, false);
    return t;
}

/**
 * The zero-copy host fast path must not change what the timing layer
 * sees: the recorded trace of every lookup must equal the reference
 * reconstruction field-by-field, the cycles the core model assigns to
 * that trace must be identical, and the untraced lookup must return
 * the same values as the traced one.
 */
TEST(TraceEquivalence, FastPathKeepsTraceAndCyclesIdentical)
{
    SimMemory mem(256ull << 20);
    // Two independent hierarchy+core pairs: replaying the two traces on
    // one core would let the first run warm the caches for the second.
    MemoryHierarchy hier_got, hier_want;
    CoreModel core_got(hier_got, 0), core_want(hier_want, 0);
    TraceBuilder builder;
    // The reference reconstruction below models the unfiltered probe
    // walk; pin the mode so a -DHALO_CUCKOO_EMOMA build (which flips
    // the config default) doesn't add steering refs the oracle lacks.
    // Filtered trace equivalence lives in tests/hash.
    CuckooHashTable table(mem, {16, 4096, HashKind::XxMix, 0xfeed,
                                0.95, CuckooFilter::None});
    const Addr key_stage = mem.allocate(cacheLineBytes, cacheLineBytes);

    Xoshiro256 rng(0x7777);
    std::vector<std::vector<std::uint8_t>> keys;
    for (int i = 0; i < 3000; ++i) {
        keys.push_back(makeKey(rng.nextBounded(4000), 16));
        table.insert(KeyView(keys.back().data(), 16), rng.next() | 1);
    }

    Cycles when = 0;
    for (int i = 0; i < 600; ++i) {
        // Mix hits and misses; misses exercise the both-buckets walk.
        const auto key = makeKey(rng.nextBounded(8000), 16);
        mem.write(key_stage, key.data(), key.size());

        AccessTrace got;
        const auto traced = table.lookup(KeyView(key.data(), 16), &got,
                                         key_stage);
        const auto untraced = table.lookup(KeyView(key.data(), 16));
        ASSERT_EQ(traced.has_value(), untraced.has_value()) << "i=" << i;
        if (traced)
            ASSERT_EQ(*traced, *untraced) << "i=" << i;

        const AccessTrace want = referenceLookupTrace(
            mem, table, KeyView(key.data(), 16), key_stage);
        ASSERT_EQ(got.size(), want.size()) << "i=" << i;
        for (std::size_t r = 0; r < want.size(); ++r) {
            ASSERT_EQ(got[r].addr, want[r].addr) << "i=" << i << " r=" << r;
            ASSERT_EQ(got[r].size, want[r].size) << "i=" << i << " r=" << r;
            ASSERT_EQ(got[r].write, want[r].write);
            ASSERT_EQ(got[r].phase, want[r].phase);
            ASSERT_EQ(got[r].dependsOnPrevious, want[r].dependsOnPrevious);
            ASSERT_EQ(got[r].lowEntropyBranch, want[r].lowEntropyBranch);
        }

        // Identical traces must also price identically on the core.
        OpTrace ops_got, ops_want;
        builder.lowerTableOp(got, ops_got);
        builder.lowerTableOp(want, ops_want);
        const Cycles start = (when += 500);
        const auto run_got = core_got.run(ops_got, start);
        const auto run_want = core_want.run(ops_want, start);
        ASSERT_EQ(run_got.endCycle, run_want.endCycle) << "i=" << i;
        ASSERT_EQ(run_got.instructions, run_want.instructions);
    }
}

} // namespace
} // namespace halo
