/**
 * @file
 * Property test: for every supported hash kind and key length, the
 * HALO accelerator's functional result equals the software table's for
 * hits, misses, and post-update lookups. This is the repository's
 * central invariant — the accelerator walks the same self-describing
 * bytes the software does.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/halo_system.hh"
#include "hash/cuckoo_table.hh"
#include "sim/random.hh"

namespace halo {
namespace {

class EquivalenceParam
    : public ::testing::TestWithParam<
          std::tuple<HashKind, std::uint32_t, DispatchPolicy>>
{
};

std::vector<std::uint8_t>
makeKey(std::uint64_t id, std::uint32_t len)
{
    std::vector<std::uint8_t> key(len, 0);
    std::memcpy(key.data(), &id, sizeof(id));
    if (len > 8)
        key[len - 1] = static_cast<std::uint8_t>(id * 131);
    return key;
}

TEST_P(EquivalenceParam, AcceleratorMatchesSoftwareThroughChurn)
{
    const auto [kind, key_len, policy] = GetParam();
    SimMemory mem(256ull << 20);
    MemoryHierarchy hier;
    HaloConfig hcfg;
    hcfg.dispatchPolicy = policy;
    HaloSystem halo(mem, hier, hcfg);
    CuckooHashTable table(
        mem, {key_len, 2048, kind,
              0x1234 + static_cast<std::uint64_t>(kind), 0.95});
    const Addr key_stage = mem.allocate(cacheLineBytes, cacheLineBytes);

    Xoshiro256 rng(static_cast<std::uint64_t>(kind) * 100 + key_len);
    Cycles when = 0;
    for (int op = 0; op < 1200; ++op) {
        const std::uint64_t id = rng.nextBounded(700);
        const auto key = makeKey(id, key_len);
        const int what = static_cast<int>(rng.nextBounded(10));
        if (what < 4) {
            table.insert(KeyView(key.data(), key.size()),
                         rng.next() | 1);
        } else if (what < 5) {
            table.erase(KeyView(key.data(), key.size()));
        } else {
            mem.write(key_stage, key.data(), key.size());
            hier.warmLine(key_stage);
            const QueryResult qr = halo.rawQuery(
                0, table.metadataAddr(), key_stage, when += 400);
            const auto sw = table.lookup(KeyView(key.data(),
                                                 key.size()));
            ASSERT_EQ(qr.found, sw.has_value())
                << "op " << op << " id " << id;
            if (sw)
                ASSERT_EQ(qr.value, *sw);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    KindsKeysPolicies, EquivalenceParam,
    ::testing::Combine(
        ::testing::Values(HashKind::Crc32c, HashKind::Jenkins,
                          HashKind::XxMix),
        ::testing::Values(8u, 13u, 16u, 32u, 64u),
        ::testing::Values(DispatchPolicy::TableHash,
                          DispatchPolicy::KeyHash)));

} // namespace
} // namespace halo
