/**
 * @file
 * Tests for the accelerator's metadata-cache coherence (the snoop-
 * filter CV bit of paper SS4.3) and the per-access bounds checking
 * (paper SS4.7).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/halo_system.hh"
#include "hash/cuckoo_table.hh"

namespace halo {
namespace {

struct Rig
{
    SimMemory mem{256ull << 20};
    MemoryHierarchy hier;
    HaloSystem halo{mem, hier};
    Addr keySlot = 0;

    Rig() { keySlot = mem.allocate(cacheLineBytes, cacheLineBytes); }

    Addr
    stage(std::uint64_t id)
    {
        std::uint8_t key[16] = {};
        std::memcpy(key, &id, 8);
        mem.write(keySlot, key, 16);
        hier.warmLine(keySlot);
        return keySlot;
    }
};

TEST(MetadataCoherence, CoreWriteInvalidatesAcceleratorCopies)
{
    Rig rig;
    CuckooHashTable table(rig.mem,
                          {16, 256, HashKind::XxMix, 1, 0.95});
    std::uint8_t key[16] = {1};
    table.insert(KeyView(key, 16), 7);

    const SliceId target =
        rig.halo.distributor().route(table.metadataAddr(), 0);
    auto &acc = rig.halo.accelerator(target);

    rig.halo.rawQuery(0, table.metadataAddr(), rig.stage(0), 0);
    rig.halo.rawQuery(0, table.metadataAddr(), rig.stage(0), 1000);
    EXPECT_EQ(acc.stats().counterValue("metadata_misses"), 1u);

    // A core write to the metadata line (e.g. the control plane
    // resizing the table) triggers the snoop-filter CV-bit
    // invalidation...
    rig.hier.coreAccess(0, table.metadataAddr(), /*is_write=*/true);

    // ...so the next query refetches.
    rig.halo.rawQuery(0, table.metadataAddr(), rig.stage(0), 2000);
    EXPECT_EQ(acc.stats().counterValue("metadata_misses"), 2u);
}

TEST(MetadataCoherence, UnrelatedWritesDoNotInvalidate)
{
    Rig rig;
    CuckooHashTable table(rig.mem,
                          {16, 256, HashKind::XxMix, 2, 0.95});
    std::uint8_t key[16] = {2};
    table.insert(KeyView(key, 16), 9);
    const SliceId target =
        rig.halo.distributor().route(table.metadataAddr(), 0);
    auto &acc = rig.halo.accelerator(target);

    rig.halo.rawQuery(0, table.metadataAddr(), rig.stage(0), 0);
    // Writes elsewhere (the version line, a bucket) leave the cached
    // metadata line alone.
    rig.hier.coreAccess(0, table.versionAddr(), true);
    rig.hier.coreAccess(0, table.metadata().bucketArrayAddr, true);
    rig.halo.rawQuery(0, table.metadataAddr(), rig.stage(0), 1000);
    EXPECT_EQ(acc.stats().counterValue("metadata_misses"), 1u);
}

TEST(Bounds, CorruptKvReferenceIsRejected)
{
    Rig rig;
    CuckooHashTable table(rig.mem,
                          {16, 64, HashKind::XxMix, 3, 0.95});
    std::uint8_t key[16] = {3};
    table.insert(KeyView(key, 16), 11);

    // Corrupt the inserted entry: keep its signature but point the kv
    // reference far outside the kv array.
    const TableMetadata md = table.metadata();
    bool corrupted = false;
    for (std::uint64_t b = 0; b < md.numBuckets && !corrupted; ++b) {
        for (unsigned w = 0; w < entriesPerBucket; ++w) {
            const Addr ea = bucketEntryAddr(md, b, w);
            auto entry = rig.mem.load<BucketEntry>(ea);
            if (entry.kvRef != 0) {
                entry.kvRef = 0x7fffffff;
                rig.mem.store(ea, entry);
                corrupted = true;
                break;
            }
        }
    }
    ASSERT_TRUE(corrupted);

    const SliceId target =
        rig.halo.distributor().route(table.metadataAddr(), 0);
    const QueryResult r = rig.halo.rawQuery(
        0, table.metadataAddr(), rig.stage(*(std::uint64_t *)key), 0);
    // The accelerator must neither crash nor fabricate a hit.
    EXPECT_FALSE(r.found);
    EXPECT_GE(rig.halo.accelerator(target).boundsViolations(), 1u);
}

TEST(Bounds, WellFormedTablesNeverViolate)
{
    Rig rig;
    CuckooHashTable table(rig.mem,
                          {16, 2048, HashKind::XxMix, 4, 0.95});
    for (std::uint64_t i = 0; i < 1800; ++i) {
        std::uint8_t key[16] = {};
        std::memcpy(key, &i, 8);
        table.insert(KeyView(key, 16), i + 1);
    }
    for (std::uint64_t i = 0; i < 500; ++i)
        rig.halo.rawQuery(0, table.metadataAddr(), rig.stage(i % 1800),
                          i * 300);
    for (unsigned s = 0; s < rig.halo.numAccelerators(); ++s)
        EXPECT_EQ(rig.halo.accelerator(s).boundsViolations(), 0u);
}

} // namespace
} // namespace halo
