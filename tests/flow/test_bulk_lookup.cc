/**
 * @file
 * Equivalence tests for the bulk EMC probe and the bulk tuple-space
 * walk against their scalar counterparts, including the recorded
 * reference streams the burst classifier replays for pricing.
 */

#include <gtest/gtest.h>

#include "flow/emc.hh"
#include "flow/ruleset.hh"
#include "flow/tuple_space.hh"
#include "net/traffic_gen.hh"

namespace halo {
namespace {

void
expectSameRef(const MemRef &bulk, const MemRef &scalar, std::size_t lane,
              std::size_t k)
{
    EXPECT_EQ(bulk.addr, scalar.addr) << "lane " << lane << " ref " << k;
    EXPECT_EQ(bulk.size, scalar.size)
        << "lane " << lane << " ref " << k;
    EXPECT_EQ(bulk.phase, scalar.phase)
        << "lane " << lane << " ref " << k;
    EXPECT_EQ(bulk.write, scalar.write)
        << "lane " << lane << " ref " << k;
    EXPECT_EQ(bulk.dependsOnPrevious, scalar.dependsOnPrevious)
        << "lane " << lane << " ref " << k;
    EXPECT_EQ(bulk.lowEntropyBranch, scalar.lowEntropyBranch)
        << "lane " << lane << " ref " << k;
}

void
expectSameTrace(const AccessTrace &bulk, const AccessTrace &scalar,
                std::size_t lane)
{
    ASSERT_EQ(bulk.size(), scalar.size()) << "lane " << lane;
    for (std::size_t k = 0; k < bulk.size(); ++k)
        expectSameRef(bulk[k], scalar[k], lane, k);
}

TEST(EmcBulk, MatchesScalarLookupIncludingTraces)
{
    SimMemory mem(8 << 20);
    ExactMatchCache emc(mem, 1024);
    TrafficGenerator gen(TrafficConfig{300, 0.0, 0.5, 0xbead});
    for (std::size_t i = 0; i < 150; ++i)
        emc.insert(gen.flows()[i].toKey(), i + 1);

    // Hit / miss mix over a full batch.
    std::vector<std::array<std::uint8_t, FiveTuple::keyBytes>> keys;
    for (std::size_t i = 0; i < maxBulkLanes; ++i)
        keys.push_back(gen.flows()[(i * 11) % 300].toKey());

    std::array<const std::uint8_t *, maxBulkLanes> key_ptrs;
    std::array<AccessTrace, maxBulkLanes> traces;
    std::array<AccessTrace *, maxBulkLanes> trace_ptrs;
    std::array<std::uint64_t, maxBulkLanes> values{};
    std::array<std::uint64_t[2], maxBulkLanes> slots;
    for (std::size_t i = 0; i < maxBulkLanes; ++i) {
        key_ptrs[i] = keys[i].data();
        trace_ptrs[i] = &traces[i];
    }

    const std::uint32_t mask =
        emc.lookupBulk(key_ptrs.data(), maxBulkLanes, values.data(),
                       slots.data(), trace_ptrs.data());

    for (std::size_t i = 0; i < maxBulkLanes; ++i) {
        AccessTrace scalar_trace;
        const auto scalar = emc.lookup(keys[i], &scalar_trace);
        EXPECT_EQ((mask >> i) & 1u, scalar.has_value() ? 1u : 0u)
            << "lane " << i;
        if (scalar)
            EXPECT_EQ(values[i], *scalar) << "lane " << i;
        expectSameTrace(traces[i], scalar_trace, i);
        // A lane's two candidate slots must be distinct and inside the
        // table (the burst path uses them for conflict detection).
        EXPECT_NE(slots[i][0], slots[i][1]) << "lane " << i;
        EXPECT_LT(slots[i][0], emc.entryCount()) << "lane " << i;
        EXPECT_LT(slots[i][1], emc.entryCount()) << "lane " << i;
    }
}

TEST(EmcBulk, ReportsSlotsInsertWillUse)
{
    SimMemory mem(8 << 20);
    ExactMatchCache emc(mem, 256);
    FiveTuple t;
    t.srcIp = 0x0a000001;
    t.dstIp = 0x0a000002;
    t.srcPort = 80;
    t.dstPort = 8080;
    const auto key = t.toKey();

    const std::uint8_t *key_ptr = key.data();
    std::uint64_t value = 0;
    std::uint64_t slots[1][2];
    emc.lookupBulk(&key_ptr, 1, &value, slots);
    // insert() must land in one of the candidate slots the bulk probe
    // reported — that containment is what the conflict log relies on.
    const std::uint64_t written = emc.insert(key, 7);
    EXPECT_TRUE(written == slots[0][0] || written == slots[0][1]);
}

struct WalkRig
{
    SimMemory mem{64 << 20};
    TrafficGenerator gen{TrafficConfig{400, 0.0, 0.5, 0xfeed}};
    RuleSet rules;
    TupleSpace ts;

    WalkRig()
        : rules(deriveRules(gen.flows(), canonicalMasks(6), 0, 0x31)),
          ts(mem, {4096, HashKind::XxMix, 0x7a57e})
    {
        for (const FlowRule &r : rules)
            EXPECT_TRUE(ts.addRule(r));
    }
};

TEST(TupleSpaceBulk, MatchesScalarFirstMatchWalk)
{
    WalkRig rig;

    std::vector<std::array<std::uint8_t, FiveTuple::keyBytes>> keys;
    for (std::size_t i = 0; i < maxBulkLanes; ++i) {
        if (i % 4 == 2) {
            FiveTuple alien;
            alien.srcIp = 0xdead0000 + static_cast<std::uint32_t>(i);
            alien.dstIp = 0xbeef0000 + static_cast<std::uint32_t>(i);
            keys.push_back(alien.toKey());
        } else {
            keys.push_back(rig.gen.flows()[(i * 29) % 400].toKey());
        }
    }

    std::array<const std::uint8_t *, maxBulkLanes> key_ptrs;
    std::array<TupleSpace::BulkWalkLane, maxBulkLanes> lanes;
    std::array<TupleSpace::BulkWalkLane *, maxBulkLanes> lane_ptrs;
    for (std::size_t i = 0; i < maxBulkLanes; ++i) {
        key_ptrs[i] = keys[i].data();
        lanes[i].reset();
        lane_ptrs[i] = &lanes[i];
    }

    const std::uint32_t mask = rig.ts.lookupFirstBulk(
        key_ptrs.data(), maxBulkLanes, lane_ptrs.data());

    for (std::size_t i = 0; i < maxBulkLanes; ++i) {
        AccessTrace scalar_trace;
        const auto scalar = rig.ts.lookupFirst(keys[i], &scalar_trace);
        EXPECT_EQ((mask >> i) & 1u, scalar.has_value() ? 1u : 0u)
            << "lane " << i;
        EXPECT_EQ(lanes[i].found, scalar.has_value()) << "lane " << i;
        if (scalar) {
            EXPECT_EQ(lanes[i].match.value, scalar->value)
                << "lane " << i;
            EXPECT_EQ(lanes[i].match.priority, scalar->priority)
                << "lane " << i;
            EXPECT_EQ(lanes[i].match.tupleIndex, scalar->tupleIndex)
                << "lane " << i;
            EXPECT_EQ(lanes[i].match.tuplesSearched,
                      scalar->tuplesSearched)
                << "lane " << i;
        } else {
            // A miss walks every tuple.
            EXPECT_EQ(lanes[i].searched, rig.ts.numTuples())
                << "lane " << i;
        }
        expectSameTrace(lanes[i].trace, scalar_trace, i);
        // probeEnds segments the concatenated trace: one entry per
        // probed tuple, last entry the full trace length.
        ASSERT_EQ(lanes[i].probeEnds.size(), lanes[i].searched)
            << "lane " << i;
        if (!lanes[i].probeEnds.empty()) {
            EXPECT_EQ(lanes[i].probeEnds.back(), lanes[i].trace.size())
                << "lane " << i;
            for (std::size_t k = 1; k < lanes[i].probeEnds.size(); ++k)
                EXPECT_LT(lanes[i].probeEnds[k - 1],
                          lanes[i].probeEnds[k])
                    << "lane " << i;
        }
    }
}

TEST(TupleSpaceBulk, LaneReuseAfterReset)
{
    WalkRig rig;
    const auto key = rig.gen.flows()[3].toKey();
    const std::uint8_t *key_ptr = key.data();
    TupleSpace::BulkWalkLane lane;
    TupleSpace::BulkWalkLane *lane_ptr = &lane;

    rig.ts.lookupFirstBulk(&key_ptr, 1, &lane_ptr);
    const auto first_trace = lane.trace;
    const unsigned first_searched = lane.searched;

    lane.reset();
    rig.ts.lookupFirstBulk(&key_ptr, 1, &lane_ptr);
    EXPECT_EQ(lane.searched, first_searched);
    expectSameTrace(lane.trace, first_trace, 0);
}

} // namespace
} // namespace halo
