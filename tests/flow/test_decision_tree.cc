/**
 * @file
 * Unit tests for the decision-tree classifier and the HALO tree-walk
 * microprogram (paper SS4.8).
 */

#include <gtest/gtest.h>

#include "core/halo_system.hh"
#include "flow/decision_tree.hh"
#include "flow/ruleset.hh"
#include "flow/tuple_space.hh"
#include "net/traffic_gen.hh"

namespace halo {
namespace {

RuleSet
smallRules()
{
    RuleSet rules;
    auto add = [&](std::uint32_t dst, unsigned prefix,
                   std::uint16_t prio, std::uint16_t port) {
        FlowRule r;
        r.mask = FlowMask::fields(0, prefix, false, false, false);
        FiveTuple t;
        t.dstIp = dst;
        r.maskedKey = r.mask.apply(t.toKey());
        r.priority = prio;
        r.action = {ActionKind::Forward, port};
        rules.push_back(r);
    };
    add(0x0a010000, 16, 10, 1);
    add(0x0a020000, 16, 10, 2);
    add(0x0a000000, 8, 5, 3); // broad fallback
    return rules;
}

TEST(DecisionTree, ClassifiesByPrefix)
{
    SimMemory mem(64 << 20);
    DecisionTree tree(mem, smallRules());
    EXPECT_GE(tree.numNodes(), 1u);

    FiveTuple a, b, c, d;
    a.dstIp = 0x0a01dead;
    b.dstIp = 0x0a02beef;
    c.dstIp = 0x0a7711ff;
    d.dstIp = 0x0b000001;
    const auto ma = tree.classify(a.toKey());
    const auto mb = tree.classify(b.toKey());
    const auto mc = tree.classify(c.toKey());
    const auto md = tree.classify(d.toKey());
    ASSERT_TRUE(ma && mb && mc);
    EXPECT_EQ(ma->action.port, 1);
    EXPECT_EQ(mb->action.port, 2);
    EXPECT_EQ(mc->action.port, 3); // falls through to /8
    EXPECT_FALSE(md.has_value());  // outside 10/8
}

TEST(DecisionTree, HighestPriorityWinsInLeaf)
{
    RuleSet rules = smallRules();
    // A higher-priority broad rule should beat the /16s.
    FlowRule boss;
    boss.mask = FlowMask::fields(0, 8, false, false, false);
    FiveTuple t;
    t.dstIp = 0x0a000000;
    boss.maskedKey = boss.mask.apply(t.toKey());
    boss.priority = 99;
    boss.action = {ActionKind::Drop, 9};
    rules.push_back(boss);

    SimMemory mem(64 << 20);
    DecisionTree tree(mem, rules);
    FiveTuple probe;
    probe.dstIp = 0x0a01aaaa;
    const auto m = tree.classify(probe.toKey());
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->action.kind, ActionKind::Drop);
}

TEST(DecisionTree, MatchesLinearScanOnRandomWorkload)
{
    SimMemory mem(256 << 20);
    TrafficConfig cfg;
    cfg.numFlows = 400;
    TrafficGenerator gen(cfg);
    const RuleSet rules =
        deriveRules(gen.flows(), canonicalMasks(6), 120, 9);
    DecisionTree tree(mem, rules);

    // Reference: highest-priority linear scan.
    auto reference = [&](const FiveTuple &t)
        -> std::optional<std::uint16_t> {
        const auto key = t.toKey();
        std::optional<std::uint16_t> best_prio;
        std::uint16_t best_port = 0;
        for (const FlowRule &r : rules) {
            if (r.matches(key) &&
                (!best_prio || r.priority > *best_prio)) {
                best_prio = r.priority;
                best_port = r.action.port;
            }
        }
        if (!best_prio)
            return std::nullopt;
        return best_port;
    };

    unsigned checked = 0;
    for (const FiveTuple &flow : gen.flows()) {
        const auto want = reference(flow);
        const auto got = tree.classify(flow.toKey());
        ASSERT_EQ(want.has_value(), got.has_value());
        if (want) {
            // Port equality is the strong check; leaf truncation could
            // in principle drop low-priority rules but the highest-
            // priority match must always survive.
            EXPECT_EQ(*want, got->action.port);
        }
        ++checked;
    }
    EXPECT_EQ(checked, 400u);
}

TEST(DecisionTree, TraceHasDependentWalk)
{
    SimMemory mem(64 << 20);
    DecisionTree tree(mem, smallRules());
    FiveTuple t;
    t.dstIp = 0x0a018888;
    AccessTrace trace;
    ASSERT_TRUE(tree.classify(t.toKey(), &trace).has_value());
    ASSERT_GE(trace.size(), 2u);
    EXPECT_EQ(trace[0].phase, AccessPhase::Metadata);
    bool dependent = false;
    for (const MemRef &ref : trace)
        dependent |= ref.dependsOnPrevious;
    EXPECT_TRUE(dependent);
}

TEST(DecisionTree, AcceleratorWalkMatchesSoftware)
{
    SimMemory mem(512ull << 20);
    MemoryHierarchy hier;
    HaloSystem halo(mem, hier);

    TrafficConfig cfg;
    cfg.numFlows = 600;
    TrafficGenerator gen(cfg);
    const RuleSet rules =
        deriveRules(gen.flows(), canonicalMasks(5), 200, 17);
    DecisionTree tree(mem, rules);
    tree.forEachLine([&](Addr a) { hier.warmLine(a); });

    const Addr key_stage = mem.allocate(cacheLineBytes, cacheLineBytes);
    unsigned found = 0;
    for (const FiveTuple &flow : gen.flows()) {
        const auto key = flow.toKey();
        mem.write(key_stage, key.data(), key.size());
        hier.warmLine(key_stage);
        const QueryResult qr =
            halo.rawQuery(0, tree.headerAddr(), key_stage, 0);
        const auto sw = tree.classify(key);
        ASSERT_EQ(qr.found, sw.has_value());
        if (sw) {
            EXPECT_EQ(Action::decode(qr.value).port, sw->action.port);
            EXPECT_EQ(decodeRulePriority(qr.value), sw->priority);
            ++found;
        }
    }
    EXPECT_GT(found, 0u);
    // No bounds violations on well-formed trees.
    for (unsigned s = 0; s < halo.numAccelerators(); ++s)
        EXPECT_EQ(halo.accelerator(s).boundsViolations(), 0u);
}

TEST(DecisionTree, FootprintAndWarming)
{
    SimMemory mem(64 << 20);
    DecisionTree tree(mem, smallRules());
    EXPECT_GT(tree.footprintBytes(), 0u);
    std::uint64_t lines = 0;
    tree.forEachLine([&](Addr a) {
        EXPECT_TRUE(isLineAligned(a));
        ++lines;
    });
    EXPECT_GE(lines * cacheLineBytes, tree.footprintBytes());
}

TEST(DecisionTree, RejectsEmptyRuleSet)
{
    SimMemory mem(1 << 20);
    EXPECT_THROW(DecisionTree(mem, RuleSet{}), PanicError);
}

} // namespace
} // namespace halo
