/**
 * @file
 * Unit tests for the EMC, tuple space, and rule-set synthesis.
 */

#include <gtest/gtest.h>

#include "flow/emc.hh"
#include "flow/ruleset.hh"
#include "flow/tuple_space.hh"
#include "net/traffic_gen.hh"

namespace halo {
namespace {

std::array<std::uint8_t, FiveTuple::keyBytes>
keyOf(std::uint32_t src, std::uint32_t dst, std::uint16_t sp,
      std::uint16_t dp)
{
    FiveTuple t;
    t.srcIp = src;
    t.dstIp = dst;
    t.srcPort = sp;
    t.dstPort = dp;
    return t.toKey();
}

TEST(Emc, InsertLookupRoundTrip)
{
    SimMemory mem(8 << 20);
    ExactMatchCache emc(mem, 1024);
    const auto key = keyOf(1, 2, 3, 4);
    EXPECT_FALSE(emc.lookup(key).has_value());
    emc.insert(key, 42);
    ASSERT_TRUE(emc.lookup(key).has_value());
    EXPECT_EQ(*emc.lookup(key), 42u);
}

TEST(Emc, ReplacementKeepsWorking)
{
    SimMemory mem(8 << 20);
    ExactMatchCache emc(mem, 64); // tiny EMC: plenty of conflicts
    for (std::uint32_t i = 0; i < 1000; ++i)
        emc.insert(keyOf(i, i + 1, 1, 2), i);
    // Recently inserted keys are mostly still present.
    unsigned hits = 0;
    for (std::uint32_t i = 990; i < 1000; ++i)
        hits += emc.lookup(keyOf(i, i + 1, 1, 2)).has_value() ? 1 : 0;
    EXPECT_GE(hits, 3u);
}

TEST(Emc, ClearInvalidatesEverything)
{
    SimMemory mem(8 << 20);
    ExactMatchCache emc(mem, 256);
    emc.insert(keyOf(5, 6, 7, 8), 1);
    emc.clear();
    EXPECT_FALSE(emc.lookup(keyOf(5, 6, 7, 8)).has_value());
    // Reinsertable after clear.
    emc.insert(keyOf(5, 6, 7, 8), 2);
    EXPECT_EQ(*emc.lookup(keyOf(5, 6, 7, 8)), 2u);
}

TEST(Emc, UpdateInPlace)
{
    SimMemory mem(8 << 20);
    ExactMatchCache emc(mem, 256);
    emc.insert(keyOf(9, 9, 9, 9), 1);
    emc.insert(keyOf(9, 9, 9, 9), 7);
    EXPECT_EQ(*emc.lookup(keyOf(9, 9, 9, 9)), 7u);
}

TEST(TupleSpace, RulesGroupByMask)
{
    SimMemory mem(64 << 20);
    TupleSpace ts(mem);
    FlowRule r1, r2, r3;
    r1.mask = FlowMask::exact();
    r2.mask = FlowMask::exact();
    r3.mask = FlowMask::fields(24, 24, false, false, false);
    FiveTuple t1, t2;
    t1.srcIp = 1;
    t2.srcIp = 2;
    r1.maskedKey = r1.mask.apply(t1.toKey());
    r2.maskedKey = r2.mask.apply(t2.toKey());
    r3.maskedKey = r3.mask.apply(t1.toKey());
    EXPECT_TRUE(ts.addRule(r1));
    EXPECT_TRUE(ts.addRule(r2));
    EXPECT_TRUE(ts.addRule(r3));
    EXPECT_EQ(ts.numTuples(), 2u);
    EXPECT_EQ(ts.ruleCount(), 3u);
}

TEST(TupleSpace, FirstMatchStopsEarly)
{
    SimMemory mem(64 << 20);
    TupleSpace ts(mem);
    FiveTuple t;
    t.srcIp = 0x0a0b0c0d;
    t.dstIp = 0x0a0b0c0e;

    FlowRule exact;
    exact.mask = FlowMask::exact();
    exact.maskedKey = exact.mask.apply(t.toKey());
    exact.priority = 10;
    exact.action = {ActionKind::Forward, 1};

    FlowRule broad;
    broad.mask = FlowMask::fields(8, 0, false, false, false);
    broad.maskedKey = broad.mask.apply(t.toKey());
    broad.priority = 5;
    broad.action = {ActionKind::Forward, 2};

    ts.addRule(exact);
    ts.addRule(broad);

    const auto key = t.toKey();
    const auto match = ts.lookupFirst(key);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->tupleIndex, 0u);
    EXPECT_EQ(match->tuplesSearched, 1u);
    EXPECT_EQ(Action::decode(match->value).port, 1);
}

TEST(TupleSpace, BestMatchHonorsPriority)
{
    SimMemory mem(64 << 20);
    TupleSpace ts(mem);
    FiveTuple t;
    t.srcIp = 0x0a0b0c0d;

    FlowRule low, high;
    low.mask = FlowMask::exact();
    low.maskedKey = low.mask.apply(t.toKey());
    low.priority = 1;
    low.action = {ActionKind::Forward, 1};
    high.mask = FlowMask::fields(8, 0, false, false, false);
    high.maskedKey = high.mask.apply(t.toKey());
    high.priority = 99;
    high.action = {ActionKind::Drop, 2};
    ts.addRule(low);
    ts.addRule(high);

    const auto match = ts.lookupBest(t.toKey());
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->priority, 99);
    EXPECT_EQ(Action::decode(match->value).kind, ActionKind::Drop);
    EXPECT_EQ(match->tuplesSearched, ts.numTuples());
}

TEST(TupleSpace, MissReturnsNothing)
{
    SimMemory mem(64 << 20);
    TupleSpace ts(mem);
    FiveTuple t;
    t.srcIp = 42;
    FlowRule r;
    r.mask = FlowMask::exact();
    r.maskedKey = r.mask.apply(t.toKey());
    ts.addRule(r);
    FiveTuple other;
    other.srcIp = 43;
    EXPECT_FALSE(ts.lookupFirst(other.toKey()).has_value());
}

TEST(Action, EncodeDecodeRoundTrip)
{
    for (const ActionKind kind :
         {ActionKind::Forward, ActionKind::Drop, ActionKind::Nat,
          ActionKind::Mirror}) {
        Action a;
        a.kind = kind;
        a.port = 777;
        const Action b = Action::decode(a.encode());
        EXPECT_EQ(b, a);
        EXPECT_NE(a.encode(), 0u);
        EXPECT_NE(a.encode(), ~0ull);
    }
}

TEST(Action, PriorityPackingPreservesAction)
{
    Action a{ActionKind::Nat, 300};
    const std::uint64_t v = encodeRuleValue(a, 1234);
    EXPECT_EQ(decodeRulePriority(v), 1234);
    EXPECT_EQ(Action::decode(v), a);
}

TEST(RuleSet, CanonicalMasksDistinct)
{
    const auto masks = canonicalMasks(20);
    EXPECT_EQ(masks.size(), 20u);
    for (std::size_t i = 0; i < masks.size(); ++i)
        for (std::size_t j = i + 1; j < masks.size(); ++j)
            EXPECT_FALSE(masks[i] == masks[j]);
    EXPECT_THROW(canonicalMasks(21), PanicError);
    EXPECT_THROW(canonicalMasks(0), PanicError);
}

TEST(RuleSet, EveryFlowMatchesSomeRule)
{
    TrafficConfig cfg;
    cfg.numFlows = 2000;
    TrafficGenerator gen(cfg);
    const RuleSet rules =
        deriveRules(gen.flows(), canonicalMasks(5), 0, 42);
    ASSERT_FALSE(rules.empty());

    SimMemory mem(256 << 20);
    TupleSpace ts(mem);
    for (const FlowRule &r : rules)
        ASSERT_TRUE(ts.addRule(r));
    for (const FiveTuple &flow : gen.flows()) {
        ASSERT_TRUE(ts.lookupFirst(flow.toKey()).has_value())
            << "unmatched flow";
    }
}

TEST(RuleSet, BroadMasksCollapseToHotRules)
{
    TrafficConfig cfg;
    cfg.numFlows = 50000;
    TrafficGenerator gen(cfg);
    const RuleSet rules = scenarioRules(
        TrafficScenario::ManyFlowsHotRules, gen.flows(), 7);
    // The gateway scenario: tens of rules for tens of thousands of
    // flows (paper: "20 hot rules").
    EXPECT_GE(rules.size(), 4u);
    EXPECT_LE(rules.size(), 200u);
}

TEST(RuleSet, DedupesIdenticalMaskedKeys)
{
    TrafficConfig cfg;
    cfg.numFlows = 1000;
    TrafficGenerator gen(cfg);
    const auto masks = canonicalMasks(3);
    const RuleSet rules = deriveRules(gen.flows(), masks, 0, 1);
    // No two rules share (mask, maskedKey).
    for (std::size_t i = 0; i < rules.size(); ++i) {
        for (std::size_t j = i + 1; j < rules.size(); ++j) {
            if (rules[i].mask == rules[j].mask)
                EXPECT_FALSE(rules[i].maskedKey == rules[j].maskedKey);
        }
    }
}

TEST(RuleSet, MaxRulesIsRespected)
{
    TrafficConfig cfg;
    cfg.numFlows = 1000;
    TrafficGenerator gen(cfg);
    const RuleSet rules =
        deriveRules(gen.flows(), canonicalMasks(4), 50, 3);
    EXPECT_LE(rules.size(), 50u);
}

} // namespace
} // namespace halo
