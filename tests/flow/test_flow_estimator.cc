/**
 * @file
 * Tests for the host-path linear-counting flow estimator
 * (flow/flow_estimator.hh): estimation accuracy across the flow scales
 * the adaptive EMC controller operates at (1k → 1M distinct flows),
 * window rollover isolation, saturation reporting, and the 1-in-2^k
 * packet sampling that keeps the data-path cost negligible.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "flow/flow_estimator.hh"

namespace halo {
namespace {

/** SplitMix64 finalizer: well-mixed 64-bit hash per flow id. */
std::uint64_t
flowHash(std::uint64_t id)
{
    std::uint64_t z = id + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Linear counting with a 2^18-bit window must land within a few percent
 * of the true cardinality from 1k through 1M distinct flows — the range
 * the EMC controller's disable/resize decisions depend on. 1M flows
 * load the array at n/m ≈ 4, the deep end of the estimator's accurate
 * regime.
 */
TEST(FlowEstimator, AccurateFrom1kTo1MDistinctFlows)
{
    for (const std::uint64_t n :
         {std::uint64_t{1000}, std::uint64_t{100000},
          std::uint64_t{1000000}}) {
        ShardFlowEstimator est(1ull << 18, /*sampleShift=*/0);
        for (std::uint64_t id = 0; id < n; ++id)
            est.observe(flowHash(id));
        const ShardFlowEstimator::Window w = est.closeWindow();
        ASSERT_FALSE(w.saturated) << n << " flows";
        EXPECT_EQ(w.samples, n);
        const double relErr =
            std::abs(w.estimate - static_cast<double>(n)) /
            static_cast<double>(n);
        EXPECT_LT(relErr, 0.05) << n << " flows, estimate "
                                << w.estimate;
        // The any-thread snapshots mirror the closed window.
        EXPECT_DOUBLE_EQ(est.lastEstimate(), w.estimate);
        EXPECT_EQ(est.lastSamples(), w.samples);
    }
}

/**
 * Repeats within a window must not inflate the estimate: the
 * controller's repeat-fraction test (1 - E/W) relies on E counting
 * distinct flows while W counts packets.
 */
TEST(FlowEstimator, RepeatsCountAsSamplesNotFlows)
{
    ShardFlowEstimator est(1ull << 18, 0);
    constexpr std::uint64_t flows = 5000;
    constexpr int rounds = 8;
    for (int r = 0; r < rounds; ++r)
        for (std::uint64_t id = 0; id < flows; ++id)
            est.observe(flowHash(id));
    const ShardFlowEstimator::Window w = est.closeWindow();
    EXPECT_EQ(w.samples, flows * rounds);
    EXPECT_LT(std::abs(w.estimate - double(flows)) / double(flows),
              0.05);
    // Repeat fraction derived from the window ≈ 1 - 1/rounds.
    const double repeat = 1.0 - w.estimate / double(w.samples);
    EXPECT_NEAR(repeat, 1.0 - 1.0 / rounds, 0.02);
}

/**
 * Epoch rollover: closeWindow() retires the active buffer and starts
 * the next window empty, so consecutive windows measure independent
 * populations — including the empty idle window.
 */
TEST(FlowEstimator, WindowRolloverIsolatesEpochs)
{
    ShardFlowEstimator est(1ull << 16, 0);
    EXPECT_EQ(est.windowsClosed(), 0u);

    for (std::uint64_t id = 0; id < 600; ++id)
        est.observe(flowHash(id));
    const auto w1 = est.closeWindow();
    EXPECT_EQ(w1.samples, 600u);
    EXPECT_LT(std::abs(w1.estimate - 600.0) / 600.0, 0.10);
    EXPECT_EQ(est.windowsClosed(), 1u);

    // A disjoint, smaller population in the next window: the estimate
    // must track it alone, not the union with the previous window.
    for (std::uint64_t id = 10000; id < 10200; ++id)
        est.observe(flowHash(id));
    const auto w2 = est.closeWindow();
    EXPECT_EQ(w2.samples, 200u);
    EXPECT_LT(std::abs(w2.estimate - 200.0) / 200.0, 0.10);
    EXPECT_EQ(est.windowsClosed(), 2u);

    // Idle window: no traffic, no estimate.
    const auto w3 = est.closeWindow();
    EXPECT_EQ(w3.samples, 0u);
    EXPECT_DOUBLE_EQ(w3.estimate, 0.0);
    EXPECT_FALSE(w3.saturated);
    EXPECT_EQ(est.windowsClosed(), 3u);

    // And the buffer really was cleared: the double-buffer reuses the
    // retired array two closes later, so a fourth window over a fresh
    // population must not see ghost bits from window one.
    for (std::uint64_t id = 20000; id < 20400; ++id)
        est.observe(flowHash(id));
    const auto w4 = est.closeWindow();
    EXPECT_EQ(w4.samples, 400u);
    EXPECT_LT(std::abs(w4.estimate - 400.0) / 400.0, 0.10);
}

/**
 * Saturation: when every bit fills, the window must say so and clamp
 * the estimate at the saturation bound instead of reporting a bogus
 * finite cardinality — the controller treats saturation as "more
 * flows than I can count" and disables the EMC.
 */
TEST(FlowEstimator, SaturationIsReportedNotInvented)
{
    ShardFlowEstimator est(1ull << 10, 0); // tiny: 1024 bits
    ASSERT_EQ(est.bitCount(), 1024u);
    for (std::uint64_t id = 0; id < 200000; ++id)
        est.observe(flowHash(id));
    const auto w = est.closeWindow();
    EXPECT_TRUE(w.saturated);
    EXPECT_DOUBLE_EQ(w.estimate, est.saturationBound());
    // The next window starts clean and unsaturated.
    for (std::uint64_t id = 0; id < 16; ++id)
        est.observe(flowHash(id));
    const auto next = est.closeWindow();
    EXPECT_FALSE(next.saturated);
    EXPECT_EQ(next.samples, 16u);
}

/**
 * Sampling: with sampleShift = k the estimator observes 1-in-2^k
 * packets, so the window's sample count and estimate reflect the
 * sampled stream — which is exactly what the controller's
 * repeat-fraction test is defined over.
 */
TEST(FlowEstimator, SamplingObservesOneInTwoToTheShift)
{
    constexpr unsigned shift = 3;
    ShardFlowEstimator est(1ull << 16, shift);
    EXPECT_EQ(est.sampleShift(), shift);
    constexpr std::uint64_t packets = 64000;
    // Every packet a distinct flow: the sampled stream is also all
    // distinct, so estimate ≈ samples ≈ packets / 2^shift.
    for (std::uint64_t id = 0; id < packets; ++id)
        est.observe(flowHash(id));
    const auto w = est.closeWindow();
    EXPECT_EQ(w.samples, packets >> shift);
    EXPECT_LT(std::abs(w.estimate - double(w.samples)) /
                  double(w.samples),
              0.10);
}

} // namespace
} // namespace halo
