#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "hash/hash_fn.hh"
#include "obs/metrics.hh"
#include "runtime/rss.hh"
#include "sim/random.hh"

using namespace halo;

namespace {

FiveTuple
randomTuple(Xoshiro256 &rng)
{
    FiveTuple t;
    t.srcIp = static_cast<std::uint32_t>(rng.next());
    t.dstIp = static_cast<std::uint32_t>(rng.next());
    t.srcPort = static_cast<std::uint16_t>(rng.next());
    t.dstPort = static_cast<std::uint16_t>(rng.next());
    t.proto = (rng.next() & 1) ? 6 : 17;
    return t;
}

FiveTuple
reversed(const FiveTuple &t)
{
    FiveTuple r = t;
    std::swap(r.srcIp, r.dstIp);
    std::swap(r.srcPort, r.dstPort);
    return r;
}

} // namespace

TEST(RssDispatcher, SymmetricMapsBothDirectionsToSameShard)
{
    RssConfig cfg;
    cfg.numShards = 4;
    cfg.symmetric = true;
    RssDispatcher rss(cfg);

    Xoshiro256 rng(0x1111);
    for (int i = 0; i < 1000; ++i) {
        const FiveTuple t = randomTuple(rng);
        const FiveTuple r = reversed(t);
        ASSERT_EQ(rss.hashTuple(t), rss.hashTuple(r));
        ASSERT_EQ(rss.bucketFor(t), rss.bucketFor(r));
        ASSERT_EQ(rss.shardFor(t), rss.shardFor(r));
    }
}

TEST(RssDispatcher, AsymmetricSeparatesDirections)
{
    RssConfig cfg;
    cfg.numShards = 4;
    cfg.symmetric = false;
    RssDispatcher rss(cfg);

    Xoshiro256 rng(0x2222);
    unsigned split = 0;
    for (int i = 0; i < 1000; ++i) {
        const FiveTuple t = randomTuple(rng);
        if (rss.shardFor(t) != rss.shardFor(reversed(t)))
            ++split;
    }
    // Directional hashing should separate most reversed pairs
    // (3/4 expected at 4 shards).
    EXPECT_GT(split, 500u);
}

TEST(RssDispatcher, SpreadsFlowsAcrossAllShards)
{
    for (const bool symmetric : {false, true}) {
        RssConfig cfg;
        cfg.numShards = 4;
        cfg.symmetric = symmetric;
        RssDispatcher rss(cfg);

        std::vector<std::uint64_t> load(cfg.numShards, 0);
        Xoshiro256 rng(0x3333);
        const std::uint64_t flows = 10000;
        for (std::uint64_t i = 0; i < flows; ++i)
            ++load[rss.shardFor(randomTuple(rng))];
        for (unsigned s = 0; s < cfg.numShards; ++s) {
            // Every shard carries a sane share (>=15% of fair share
            // would already indicate a broken hash; uniform traffic
            // lands near 25% each).
            EXPECT_GT(load[s], flows / 10)
                << "shard " << s << " symmetric=" << symmetric;
        }
    }
}

TEST(RssDispatcher, RebalanceMapSteersOneBucket)
{
    RssConfig cfg;
    cfg.numShards = 4;
    RssDispatcher rss(cfg);

    Xoshiro256 rng(0x4444);
    const FiveTuple hot = randomTuple(rng);
    const unsigned bucket = rss.bucketFor(hot);
    const unsigned before = rss.shardFor(hot);
    const unsigned target = (before + 1) % cfg.numShards;

    rss.setEntry(bucket, target);
    EXPECT_EQ(rss.shardFor(hot), target);
    EXPECT_EQ(rss.entry(bucket), target);

    // Every other bucket keeps its default round-robin assignment.
    for (unsigned b = 0; b < rss.tableEntries(); ++b)
        if (b != bucket)
            ASSERT_EQ(rss.entry(b), b % cfg.numShards);

    rss.resetTable();
    EXPECT_EQ(rss.shardFor(hot), before);
}

TEST(RssDispatcher, DeterministicAcrossInstances)
{
    RssConfig cfg;
    cfg.numShards = 8;
    cfg.symmetric = true;
    RssDispatcher a(cfg), b(cfg);
    Xoshiro256 rng(0x5555);
    for (int i = 0; i < 500; ++i) {
        const FiveTuple t = randomTuple(rng);
        ASSERT_EQ(a.shardFor(t), b.shardFor(t));
    }
}

/**
 * Rebalance accounting: every remap of a live indirection-table bucket
 * bumps the rebalance counter and charges the bucket's current flow
 * population to flows-moved, so operators can see how much connection
 * state a steering change disturbed.
 */
TEST(RssDispatcher, RebalanceCountersChargeMovedFlows)
{
    RssConfig cfg;
    cfg.numShards = 4;
    cfg.tableEntries = 64;
    RssDispatcher rss(cfg);
    EXPECT_EQ(rss.rebalances(), 0u); // initial spread is not a rebalance
    EXPECT_EQ(rss.flowsMoved(), 0u);

    Xoshiro256 rng(0xbeef);
    const FiveTuple hot = randomTuple(rng);
    const unsigned bucket = rss.bucketFor(hot);
    EXPECT_EQ(rss.bucketFlowCount(bucket), 0u);
    rss.noteNewFlow(hot);
    rss.noteNewFlow(hot); // two connections sharing the bucket
    EXPECT_EQ(rss.bucketFlowCount(bucket), 2u);

    const unsigned target = (rss.entry(bucket) + 1) % cfg.numShards;
    rss.setEntry(bucket, target);
    EXPECT_EQ(rss.rebalances(), 1u);
    EXPECT_EQ(rss.flowsMoved(), 2u);

    // Remapping to the shard it already lives on moves nothing.
    rss.setEntry(bucket, target);
    EXPECT_EQ(rss.rebalances(), 1u);
    EXPECT_EQ(rss.flowsMoved(), 2u);

    // Flow teardown decrements, saturating at zero.
    rss.noteFlowEnd(hot);
    rss.noteFlowEnd(hot);
    rss.noteFlowEnd(hot); // spurious end must not wrap
    EXPECT_EQ(rss.bucketFlowCount(bucket), 0u);

    // A later remap of the now-empty bucket counts, but moves nothing.
    rss.setEntry(bucket, (target + 1) % cfg.numShards);
    EXPECT_EQ(rss.rebalances(), 2u);
    EXPECT_EQ(rss.flowsMoved(), 2u);
}

TEST(RssDispatcher, RegisterMetricsExposesRebalanceCounters)
{
    RssConfig cfg;
    cfg.numShards = 2;
    cfg.tableEntries = 16;
    RssDispatcher rss(cfg);
    Xoshiro256 rng(0x77);
    const FiveTuple t = randomTuple(rng);
    rss.noteNewFlow(t);
    rss.setEntry(rss.bucketFor(t),
                 (rss.entry(rss.bucketFor(t)) + 1) % cfg.numShards);

    obs::MetricsRegistry reg;
    rss.registerMetrics(reg);
    const std::string text = reg.renderPrometheus();
    EXPECT_NE(text.find("halo_rss_rebalances 1"), std::string::npos)
        << text;
    EXPECT_NE(text.find("halo_rss_flows_moved 1"), std::string::npos)
        << text;
}

/**
 * The packed bucket word makes the indirection flip and the live-flow
 * charge one transaction: with flow accounting oscillating a bucket
 * between 0 and 1 flows while another thread remaps it, every remap
 * can charge at most the single concurrent flow, and a consistent
 * (shard, flows) pair is visible at every instant. The pre-fix racy
 * shape (separate entry array and counter array) could pair a new
 * mapping with a stale count. Runs under TSan in CI.
 */
TEST(RssDispatcher, SetEntryChargesFlowsTransactionallyUnderRace)
{
    RssConfig cfg;
    cfg.numShards = 4;
    cfg.tableEntries = 16;
    RssDispatcher rss(cfg);

    Xoshiro256 rng(0xabba);
    const FiveTuple hot = randomTuple(rng);
    const unsigned bucket = rss.bucketFor(hot);

    std::atomic<bool> done{false};
    std::thread churn([&] {
        while (!done.load(std::memory_order_acquire)) {
            rss.noteNewFlow(hot);
            rss.noteFlowEnd(hot);
        }
    });

    const std::uint64_t kFlips = 20000;
    for (std::uint64_t i = 0; i < kFlips; ++i) {
        const RssDispatcher::BucketState st = rss.bucketState(bucket);
        ASSERT_LT(st.shard, cfg.numShards);
        ASSERT_LE(st.flows, 1u); // never torn, never wrapped
        rss.setEntry(bucket,
                     static_cast<unsigned>(i % cfg.numShards));
    }
    done.store(true, std::memory_order_release);
    churn.join();

    // Each flip that changed the shard charged the flows packed in the
    // replaced word — at most the one concurrently live flow.
    EXPECT_LE(rss.flowsMoved(), rss.rebalances());
    EXPECT_EQ(rss.bucketFlowCount(bucket), 0u);
}

/**
 * Hot-bucket splitting: growTable() doubles the active table in place.
 * Every new upper-half bucket inherits its parent's shard (so a split
 * never moves a flow between shards and needs no migration protocol),
 * parent live-flow counts are split evenly, and steering for every
 * tuple is unchanged.
 */
TEST(RssDispatcher, GrowTableSplitsBucketsInPlace)
{
    RssConfig cfg;
    cfg.numShards = 4;
    cfg.tableEntries = 8;
    cfg.maxTableEntries = 32;
    RssDispatcher rss(cfg);
    ASSERT_EQ(rss.tableEntries(), 8u);
    ASSERT_EQ(rss.maxTableEntries(), 32u);

    Xoshiro256 rng(0x9191);
    const FiveTuple t = randomTuple(rng);
    const unsigned parent = rss.bucketFor(t);
    for (int i = 0; i < 5; ++i)
        rss.noteNewFlow(t);
    ASSERT_EQ(rss.bucketFlowCount(parent), 5u);

    // Record the steering of a tuple population before the split.
    std::vector<FiveTuple> tuples;
    std::vector<unsigned> shardBefore;
    for (int i = 0; i < 500; ++i) {
        tuples.push_back(randomTuple(rng));
        shardBefore.push_back(rss.shardFor(tuples.back()));
    }

    ASSERT_TRUE(rss.growTable());
    EXPECT_EQ(rss.tableEntries(), 16u);
    EXPECT_EQ(rss.tableGrows(), 1u);

    // Children inherit the parent shard; flows split between the pair.
    for (unsigned b = 0; b < 8; ++b)
        EXPECT_EQ(rss.entry(b + 8), rss.entry(b)) << "bucket " << b;
    EXPECT_EQ(rss.bucketFlowCount(parent) +
                  rss.bucketFlowCount(parent + 8),
              5u);

    // No tuple changed shards (it may have changed buckets).
    for (std::size_t i = 0; i < tuples.size(); ++i)
        ASSERT_EQ(rss.shardFor(tuples[i]), shardBefore[i]);

    // Growth stops at the pre-allocated ceiling.
    EXPECT_TRUE(rss.growTable()); // 32
    EXPECT_EQ(rss.tableEntries(), 32u);
    EXPECT_FALSE(rss.growTable());
    EXPECT_EQ(rss.tableEntries(), 32u);
    EXPECT_EQ(rss.tableGrows(), 2u);

    // maxTableEntries = 0 means no growth at all.
    RssConfig fixed;
    fixed.tableEntries = 8;
    RssDispatcher rssFixed(fixed);
    EXPECT_FALSE(rssFixed.growTable());
}

/** Per-bucket heat: notePacket accumulates, takeBucketPackets drains. */
TEST(RssDispatcher, BucketPacketHeatCountersDrainOnTake)
{
    RssConfig cfg;
    cfg.numShards = 2;
    cfg.tableEntries = 8;
    RssDispatcher rss(cfg);

    for (int i = 0; i < 7; ++i)
        rss.notePacket(3);
    rss.notePacket(5);
    EXPECT_EQ(rss.takeBucketPackets(3), 7u);
    EXPECT_EQ(rss.takeBucketPackets(3), 0u); // drained
    EXPECT_EQ(rss.takeBucketPackets(5), 1u);
    EXPECT_EQ(rss.takeBucketPackets(0), 0u);
}

TEST(RssDispatcher, RegisterMetricsExposesGrowthAndBucketGauges)
{
    RssConfig cfg;
    cfg.numShards = 2;
    cfg.tableEntries = 4;
    cfg.maxTableEntries = 8;
    RssDispatcher rss(cfg);
    Xoshiro256 rng(0x88);
    const FiveTuple t = randomTuple(rng);
    rss.noteNewFlow(t);
    ASSERT_TRUE(rss.growTable());

    obs::MetricsRegistry reg;
    rss.registerMetrics(reg);
    const std::string text = reg.renderPrometheus();
    EXPECT_NE(text.find("halo_rss_table_grows 1"), std::string::npos)
        << text;
    EXPECT_NE(text.find("halo_rss_bucket_flows"), std::string::npos)
        << text;
}

/**
 * Table growth racing live dispatch: a dispatcher thread steers and
 * churns flows while the controller doubles the table twice. The
 * widened mask must never expose an uninitialized bucket (dispatch
 * keeps returning valid shard ids). Runs under TSan in CI.
 */
TEST(RssDispatcher, GrowTableDuringDispatchIsSafe)
{
    RssConfig cfg;
    cfg.numShards = 4;
    cfg.tableEntries = 16;
    cfg.maxTableEntries = 128;
    RssDispatcher rss(cfg);

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> dispatched{0};
    std::thread dispatcher([&] {
        Xoshiro256 rng(0x6666);
        while (!done.load(std::memory_order_acquire)) {
            const FiveTuple t = randomTuple(rng);
            ASSERT_LT(rss.shardFor(t), cfg.numShards);
            rss.notePacket(rss.bucketFor(t));
            rss.noteNewFlow(t);
            rss.noteFlowEnd(t);
            dispatched.fetch_add(1, std::memory_order_release);
        }
    });
    while (dispatched.load(std::memory_order_acquire) < 100)
        std::this_thread::yield();
    while (rss.growTable()) {
        // Heat drain interleaves with growth in the real controller.
        for (unsigned b = 0; b < rss.tableEntries(); ++b)
            rss.takeBucketPackets(b);
    }
    done.store(true, std::memory_order_release);
    dispatcher.join();

    EXPECT_EQ(rss.tableEntries(), 128u);
    EXPECT_EQ(rss.tableGrows(), 3u);
}

/**
 * Live rebalance under churn: a dispatcher thread steers random
 * tuples and tracks flow setup/teardown while another thread remaps
 * indirection-table buckets — the production shape of a rebalance
 * (dispatch is never paused). Exercised under TSan in CI; dispatch
 * must keep returning valid shard ids throughout.
 */
TEST(RssDispatcher, RebalanceDuringChurnIsSafeAndCounted)
{
    RssConfig cfg;
    cfg.numShards = 4;
    cfg.tableEntries = 128;
    RssDispatcher rss(cfg);

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> flowsNoted{0};
    std::thread dispatcher([&] {
        Xoshiro256 rng(0x1234);
        std::vector<FiveTuple> live;
        while (!done.load(std::memory_order_acquire)) {
            const FiveTuple t = randomTuple(rng);
            ASSERT_LT(rss.shardFor(t), cfg.numShards);
            rss.noteNewFlow(t);
            flowsNoted.fetch_add(1, std::memory_order_release);
            live.push_back(t);
            if (live.size() > 64) {
                rss.noteFlowEnd(live.front());
                live.erase(live.begin());
            }
        }
    });
    // Let the dispatcher populate buckets before the first remap, so
    // the full-table rounds below are guaranteed to move live flows.
    while (flowsNoted.load(std::memory_order_acquire) < 64)
        std::this_thread::yield();

    // Rebalancer: walk the table remapping every bucket, repeatedly.
    Xoshiro256 rng(0x4321);
    for (int round = 0; round < 50; ++round)
        for (unsigned b = 0; b < rss.tableEntries(); ++b)
            rss.setEntry(b, static_cast<unsigned>(
                                rng.nextBounded(cfg.numShards)));
    done.store(true, std::memory_order_release);
    dispatcher.join();

    EXPECT_GT(rss.rebalances(), 0u);
    // 50 full-table random remap rounds over live flows must have
    // caught at least one populated bucket.
    EXPECT_GT(rss.flowsMoved(), 0u);
}
