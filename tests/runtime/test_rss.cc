#include <gtest/gtest.h>

#include <vector>

#include "hash/hash_fn.hh"
#include "runtime/rss.hh"
#include "sim/random.hh"

using namespace halo;

namespace {

FiveTuple
randomTuple(Xoshiro256 &rng)
{
    FiveTuple t;
    t.srcIp = static_cast<std::uint32_t>(rng.next());
    t.dstIp = static_cast<std::uint32_t>(rng.next());
    t.srcPort = static_cast<std::uint16_t>(rng.next());
    t.dstPort = static_cast<std::uint16_t>(rng.next());
    t.proto = (rng.next() & 1) ? 6 : 17;
    return t;
}

FiveTuple
reversed(const FiveTuple &t)
{
    FiveTuple r = t;
    std::swap(r.srcIp, r.dstIp);
    std::swap(r.srcPort, r.dstPort);
    return r;
}

} // namespace

TEST(RssDispatcher, SymmetricMapsBothDirectionsToSameShard)
{
    RssConfig cfg;
    cfg.numShards = 4;
    cfg.symmetric = true;
    RssDispatcher rss(cfg);

    Xoshiro256 rng(0x1111);
    for (int i = 0; i < 1000; ++i) {
        const FiveTuple t = randomTuple(rng);
        const FiveTuple r = reversed(t);
        ASSERT_EQ(rss.hashTuple(t), rss.hashTuple(r));
        ASSERT_EQ(rss.bucketFor(t), rss.bucketFor(r));
        ASSERT_EQ(rss.shardFor(t), rss.shardFor(r));
    }
}

TEST(RssDispatcher, AsymmetricSeparatesDirections)
{
    RssConfig cfg;
    cfg.numShards = 4;
    cfg.symmetric = false;
    RssDispatcher rss(cfg);

    Xoshiro256 rng(0x2222);
    unsigned split = 0;
    for (int i = 0; i < 1000; ++i) {
        const FiveTuple t = randomTuple(rng);
        if (rss.shardFor(t) != rss.shardFor(reversed(t)))
            ++split;
    }
    // Directional hashing should separate most reversed pairs
    // (3/4 expected at 4 shards).
    EXPECT_GT(split, 500u);
}

TEST(RssDispatcher, SpreadsFlowsAcrossAllShards)
{
    for (const bool symmetric : {false, true}) {
        RssConfig cfg;
        cfg.numShards = 4;
        cfg.symmetric = symmetric;
        RssDispatcher rss(cfg);

        std::vector<std::uint64_t> load(cfg.numShards, 0);
        Xoshiro256 rng(0x3333);
        const std::uint64_t flows = 10000;
        for (std::uint64_t i = 0; i < flows; ++i)
            ++load[rss.shardFor(randomTuple(rng))];
        for (unsigned s = 0; s < cfg.numShards; ++s) {
            // Every shard carries a sane share (>=15% of fair share
            // would already indicate a broken hash; uniform traffic
            // lands near 25% each).
            EXPECT_GT(load[s], flows / 10)
                << "shard " << s << " symmetric=" << symmetric;
        }
    }
}

TEST(RssDispatcher, RebalanceMapSteersOneBucket)
{
    RssConfig cfg;
    cfg.numShards = 4;
    RssDispatcher rss(cfg);

    Xoshiro256 rng(0x4444);
    const FiveTuple hot = randomTuple(rng);
    const unsigned bucket = rss.bucketFor(hot);
    const unsigned before = rss.shardFor(hot);
    const unsigned target = (before + 1) % cfg.numShards;

    rss.setEntry(bucket, target);
    EXPECT_EQ(rss.shardFor(hot), target);
    EXPECT_EQ(rss.entry(bucket), target);

    // Every other bucket keeps its default round-robin assignment.
    for (unsigned b = 0; b < rss.tableEntries(); ++b)
        if (b != bucket)
            ASSERT_EQ(rss.entry(b), b % cfg.numShards);

    rss.resetTable();
    EXPECT_EQ(rss.shardFor(hot), before);
}

TEST(RssDispatcher, DeterministicAcrossInstances)
{
    RssConfig cfg;
    cfg.numShards = 8;
    cfg.symmetric = true;
    RssDispatcher a(cfg), b(cfg);
    Xoshiro256 rng(0x5555);
    for (int i = 0; i < 500; ++i) {
        const FiveTuple t = randomTuple(rng);
        ASSERT_EQ(a.shardFor(t), b.shardFor(t));
    }
}
