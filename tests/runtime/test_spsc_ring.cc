#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/spsc_ring.hh"
#include "sim/random.hh"

using namespace halo;

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(SpscRing<int>(100).capacity(), 128u);
    EXPECT_EQ(SpscRing<int>(128).capacity(), 128u);
    EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
}

TEST(SpscRing, FifoSingleThread)
{
    SpscRing<int> ring(8);
    EXPECT_TRUE(ring.empty());
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(ring.tryPush(int(i)));
    EXPECT_FALSE(ring.tryPush(99)); // full
    EXPECT_EQ(ring.size(), 8u);
    for (int i = 0; i < 8; ++i) {
        int v = -1;
        EXPECT_TRUE(ring.tryPop(v));
        EXPECT_EQ(v, i);
    }
    int v;
    EXPECT_FALSE(ring.tryPop(v)); // empty
}

TEST(SpscRing, BatchPartialAcceptance)
{
    SpscRing<int> ring(8);
    std::vector<int> items(12);
    for (int i = 0; i < 12; ++i)
        items[i] = i;
    // Only 8 slots: a 12-item batch accepts the 8-item prefix.
    EXPECT_EQ(ring.pushBatch(items), 8u);
    int out[16];
    EXPECT_EQ(ring.popBatch(out, 16), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], i);
}

TEST(SpscRing, WrapAroundPreservesOrder)
{
    SpscRing<std::uint64_t> ring(16);
    std::uint64_t next_in = 0, next_out = 0;
    Xoshiro256 rng(0xabcdef);
    std::uint64_t staged[16];
    std::uint64_t drained[16];
    while (next_out < 100000) {
        const std::size_t want_in = rng.next() % 8 + 1;
        for (std::size_t i = 0; i < want_in; ++i)
            staged[i] = next_in + i;
        next_in += ring.pushBatch(
            std::span<const std::uint64_t>(staged, want_in));
        const std::size_t got =
            ring.popBatch(drained, rng.next() % 8 + 1);
        for (std::size_t i = 0; i < got; ++i)
            ASSERT_EQ(drained[i], next_out + i);
        next_out += got;
    }
}

TEST(SpscRing, MoveOnlyPayload)
{
    SpscRing<std::unique_ptr<int>> ring(4);
    EXPECT_TRUE(ring.tryPush(std::make_unique<int>(42)));
    std::unique_ptr<int> out;
    EXPECT_TRUE(ring.tryPop(out));
    ASSERT_TRUE(out);
    EXPECT_EQ(*out, 42);
}

TEST(SpscRing, FailedPushLeavesItemIntact)
{
    SpscRing<std::unique_ptr<int>> ring(2);
    ASSERT_TRUE(ring.tryPush(std::make_unique<int>(0)));
    ASSERT_TRUE(ring.tryPush(std::make_unique<int>(1)));
    auto item = std::make_unique<int>(2);
    EXPECT_FALSE(ring.tryPush(std::move(item)));
    ASSERT_TRUE(item); // not consumed by the failed push
    EXPECT_EQ(*item, 2);
}

/**
 * The satellite stress test: 1M items through a small ring with
 * randomized batch sizes on both sides, real threads. The consumer
 * asserts the exact sequence 0..N-1 — any loss, duplication or
 * reordering breaks the equality. Run under ASan/UBSan and TSan in CI.
 */
TEST(SpscRing, ThreadedStressExactSequence)
{
    constexpr std::uint64_t total = 1000000;
    SpscRing<std::uint64_t> ring(1024);

    std::thread producer([&] {
        Xoshiro256 rng(0x9a75);
        std::uint64_t staged[64];
        std::uint64_t next = 0;
        while (next < total) {
            const std::size_t want = std::min<std::uint64_t>(
                rng.next() % 64 + 1, total - next);
            for (std::size_t i = 0; i < want; ++i)
                staged[i] = next + i;
            const std::size_t accepted = ring.pushBatch(
                std::span<const std::uint64_t>(staged, want));
            next += accepted;
            if (accepted == 0)
                std::this_thread::yield();
        }
    });

    Xoshiro256 rng(0x51ab);
    std::uint64_t out[64];
    std::uint64_t expected = 0;
    while (expected < total) {
        const std::size_t got = ring.popBatch(out, rng.next() % 64 + 1);
        if (got == 0) {
            std::this_thread::yield();
            continue;
        }
        for (std::size_t i = 0; i < got; ++i)
            ASSERT_EQ(out[i], expected + i);
        expected += got;
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}
