/**
 * @file
 * Adaptive EMC management (DESIGN.md §16): the pure policy function
 * that turns flow-count estimates into disable/enable/resize/throttle
 * decisions, the managed cache's recency-informed eviction (traced and
 * untraced streams must leave byte-identical slabs), and the decoupled
 * runtime wiring that closes estimator windows and actually flips the
 * cache off under uncacheable traffic — the paper's §3.5 hybrid mode
 * as a runtime policy.
 */

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "flow/emc.hh"
#include "flow/ruleset.hh"
#include "hash/hash_fn.hh"
#include "mem/sim_memory.hh"
#include "runtime/emc_controller.hh"
#include "runtime/runtime.hh"

using namespace halo;

namespace {

using Act = EmcControlDecision::Action;

/** Baseline inputs describing a healthy enabled cache. */
EmcControlInputs
healthyInputs()
{
    EmcControlInputs in;
    in.estimate = 400.0;
    in.samples = 10000;
    in.enabled = true;
    in.activeEntries = 1024;
    in.maxEntries = 65536;
    in.liveEntries = 300;
    return in;
}

std::array<std::uint8_t, FiveTuple::keyBytes>
keyForId(std::uint64_t id)
{
    std::array<std::uint8_t, FiveTuple::keyBytes> key{};
    std::memcpy(key.data(), &id, sizeof(id));
    const std::uint64_t mixed = id * 0x9e3779b97f4a7c15ull;
    std::memcpy(key.data() + 8, &mixed, sizeof(mixed));
    return key;
}

} // namespace

// ---------------------------------------------------------------------
// decideEmcPolicy: pure-function policy tests.
// ---------------------------------------------------------------------

TEST(EmcPolicy, ThinWindowCarriesNoSignal)
{
    EmcPolicyConfig cfg;
    EmcControlInputs in = healthyInputs();
    in.samples = cfg.minWindowSamples - 1;
    in.currentThrottleShift = 3;
    const EmcControlDecision d = decideEmcPolicy(cfg, in);
    EXPECT_EQ(d.action, Act::None);
    // The throttle is held, not reset: no evidence either way.
    EXPECT_EQ(d.throttleShift, 3u);
}

TEST(EmcPolicy, DisablesWhenTrafficDoesNotRepeat)
{
    EmcPolicyConfig cfg;
    EmcControlInputs in = healthyInputs();
    in.samples = 10000;
    in.estimate = 9800.0; // repeat fraction 0.02 < 0.25
    in.currentThrottleShift = 2;
    const EmcControlDecision d = decideEmcPolicy(cfg, in);
    EXPECT_EQ(d.action, Act::Disable);
    EXPECT_EQ(d.throttleShift, 0u);
    EXPECT_NEAR(d.repeatFraction, 0.02, 1e-9);
}

TEST(EmcPolicy, DisablesOnSaturatedEstimator)
{
    EmcPolicyConfig cfg;
    EmcControlInputs in = healthyInputs();
    // Repeats look fine, but the bit array overflowed: "more flows
    // than I can count" must read as a disable, not as a small E.
    in.estimate = 3000.0;
    in.samples = 100000;
    in.saturated = true;
    EXPECT_EQ(decideEmcPolicy(cfg, in).action, Act::Disable);
}

TEST(EmcPolicy, DisablesWhenWorkingSetDwarfsCapacity)
{
    EmcPolicyConfig cfg;
    EmcControlInputs in = healthyInputs();
    in.maxEntries = 1024;
    in.activeEntries = 1024;
    in.estimate = 8192.0; // 8x the footprint > disableFlowRatio 4
    in.samples = 1000000; // repeat fraction 0.992: repeats alone fine
    EXPECT_EQ(decideEmcPolicy(cfg, in).action, Act::Disable);
}

TEST(EmcPolicy, HoldsSteadyOnCacheableTraffic)
{
    EmcPolicyConfig cfg;
    const EmcControlDecision d = decideEmcPolicy(cfg, healthyInputs());
    EXPECT_EQ(d.action, Act::None);
    EXPECT_EQ(d.throttleShift, 0u); // occupancy 300/1024 < 0.5
    EXPECT_GT(d.repeatFraction, 0.9);
}

TEST(EmcPolicy, GrowsTheActiveRangeWithTheWorkingSet)
{
    EmcPolicyConfig cfg;
    EmcControlInputs in = healthyInputs();
    in.estimate = 3000.0; // wanted 6000 with 2x headroom
    in.samples = 100000;
    const EmcControlDecision d = decideEmcPolicy(cfg, in);
    EXPECT_EQ(d.action, Act::Resize);
    EXPECT_EQ(d.targetEntries, 8192u);
}

TEST(EmcPolicy, ShrinksOnlyPastTheMargin)
{
    EmcPolicyConfig cfg;
    EmcControlInputs in = healthyInputs();
    in.activeEntries = 8192;
    in.liveEntries = 1000;
    in.samples = 100000;

    // Shrinking clears the cache, so a borderline fit must hold:
    // wanted 4000 -> target 4096, but 4000 * 1.25 > 4096.
    in.estimate = 2000.0;
    EXPECT_EQ(decideEmcPolicy(cfg, in).action, Act::None);

    // A clear step down (wanted 3000 * 1.25 <= 4096) shrinks.
    in.estimate = 1500.0;
    const EmcControlDecision d = decideEmcPolicy(cfg, in);
    EXPECT_EQ(d.action, Act::Resize);
    EXPECT_EQ(d.targetEntries, 4096u);
}

TEST(EmcPolicy, NeverResizesBelowMinEntries)
{
    EmcPolicyConfig cfg;
    EmcControlInputs in = healthyInputs();
    in.activeEntries = 4096;
    in.estimate = 10.0; // tiny working set
    in.samples = 100000;
    const EmcControlDecision d = decideEmcPolicy(cfg, in);
    EXPECT_EQ(d.action, Act::Resize);
    EXPECT_EQ(d.targetEntries, cfg.minEntries);
}

TEST(EmcPolicy, ThrottlesPromotionsUnderOccupancyPressure)
{
    EmcPolicyConfig cfg;
    EmcControlInputs in = healthyInputs();
    in.maxEntries = 4096;
    in.activeEntries = 4096;
    in.liveEntries = 4000; // occupancy 0.98 > 0.5
    in.samples = 1000000;

    // Oversubscribed 2x: admit 1-in-4 (shift = 1 + ceil(log2 2)).
    in.estimate = 8192.0;
    EXPECT_EQ(decideEmcPolicy(cfg, in).action, Act::None);
    EXPECT_EQ(decideEmcPolicy(cfg, in).throttleShift, 2u);

    // Steady state (working set fits, cache full): still 1-in-2 so
    // churn cannot wholesale-evict the resident set.
    in.estimate = 1000.0;
    EXPECT_EQ(decideEmcPolicy(cfg, in).throttleShift, 1u);

    // Under the occupancy threshold the throttle releases entirely.
    in.liveEntries = 1000;
    in.currentThrottleShift = 4;
    EXPECT_EQ(decideEmcPolicy(cfg, in).throttleShift, 0u);
}

TEST(EmcPolicy, ThrottleShiftIsClamped)
{
    EmcPolicyConfig cfg;
    cfg.disableFlowRatio = 1000.0; // isolate the throttle math
    EmcControlInputs in = healthyInputs();
    in.maxEntries = 4096;
    in.activeEntries = 4096;
    in.liveEntries = 4096;
    in.estimate = 1000000.0; // pressure 244 -> raw shift 9
    in.samples = 10000000;
    EXPECT_EQ(decideEmcPolicy(cfg, in).throttleShift,
              cfg.maxThrottleShift);
}

TEST(EmcPolicy, ReenableNeedsHysteresisAndFit)
{
    EmcPolicyConfig cfg;
    EmcControlInputs in = healthyInputs();
    in.enabled = false;
    in.samples = 10000;

    // Inside the hysteresis band (0.25 < repeat 0.30 < 0.40): an
    // enabled cache would stay on, but a disabled one stays off.
    in.estimate = 7000.0;
    EXPECT_EQ(decideEmcPolicy(cfg, in).action, Act::None);

    // Clearly cacheable and fits: re-enable, sized to the working set.
    in.estimate = 1000.0; // repeat 0.9; wanted 2000
    const EmcControlDecision d = decideEmcPolicy(cfg, in);
    EXPECT_EQ(d.action, Act::Enable);
    EXPECT_EQ(d.targetEntries, 2048u);
    EXPECT_EQ(d.throttleShift, 0u);

    // Cacheable but the working set (with headroom) exceeds the
    // footprint: probing it would thrash, stay off.
    in.estimate = 40000.0;
    in.samples = 10000000; // repeat 0.996
    EXPECT_EQ(decideEmcPolicy(cfg, in).action, Act::None);

    // A saturated estimator never re-enables.
    in.estimate = 1000.0;
    in.samples = 10000;
    in.saturated = true;
    EXPECT_EQ(decideEmcPolicy(cfg, in).action, Act::None);
}

// ---------------------------------------------------------------------
// Managed-cache eviction: recency and determinism.
// ---------------------------------------------------------------------

namespace {

/** The EMC's candidate slots, recomputed from its published hash
 *  parameters (XxMix over the key with the constructor seed). */
std::array<std::uint64_t, 2>
emcCandidates(std::uint64_t seed, std::uint64_t entries,
              std::span<const std::uint8_t> key)
{
    const std::uint64_t h = hashBytes(HashKind::XxMix, seed, key);
    return {h & (entries - 1), (h >> 32) & (entries - 1)};
}

} // namespace

/**
 * Recency-informed eviction: on a two-way conflict the managed insert
 * must overwrite the candidate whose insert epoch is older — whichever
 * probe position it sits at — including across uint16 epoch wraparound.
 */
TEST(EmcManaged, EvictionPrefersTheOlderEpoch)
{
    constexpr std::uint64_t entries = 4;
    constexpr std::uint64_t seed = 0x9d1c;

    // Find a conflict triple: kC with two distinct candidate slots,
    // and kA/kB whose *primary* slots are exactly those two (so each
    // fills its own slot in an empty cache).
    std::uint64_t idA = 0, idB = 0, idC = 0;
    std::array<std::uint64_t, 2> cand{};
    for (std::uint64_t id = 1; !idC; ++id) {
        const auto key = keyForId(id);
        const auto c = emcCandidates(seed, entries, key);
        if (c[0] != c[1]) {
            idC = id;
            cand = c;
        }
    }
    for (std::uint64_t id = idC + 1; !idA || !idB; ++id) {
        const auto key = keyForId(id);
        const auto c = emcCandidates(seed, entries, key);
        if (!idA && c[0] == cand[0])
            idA = id;
        else if (!idB && c[0] == cand[1])
            idB = id;
    }

    struct Round
    {
        std::uint16_t epochA, epochB, epochCurrent;
        bool expectAEvicted;
    };
    const Round rounds[] = {
        {10, 20, 21, true},       // A is older
        {20, 10, 21, false},      // B is older: probe order must lose
        {0xfffe, 2, 3, true},     // wraparound: A's age is 5, B's is 1
    };

    for (const Round &r : rounds) {
        SimMemory mem(1ull << 20);
        ExactMatchCache emc(mem, entries, seed);
        emc.enableManaged();

        const auto keyA = keyForId(idA);
        const auto keyB = keyForId(idB);
        const auto keyC = keyForId(idC);
        emc.setEpoch(r.epochA);
        ASSERT_EQ(emc.insert(keyA, 0xa), cand[0]);
        emc.setEpoch(r.epochB);
        ASSERT_EQ(emc.insert(keyB, 0xb), cand[1]);
        ASSERT_EQ(emc.liveEntries(), 2u);
        ASSERT_EQ(emc.evictOverwrites(), 0u);

        emc.setEpoch(r.epochCurrent);
        const std::uint64_t victim = emc.insert(keyC, 0xc);
        EXPECT_EQ(victim, r.expectAEvicted ? cand[0] : cand[1]);
        EXPECT_EQ(emc.evictOverwrites(), 1u);
        EXPECT_EQ(emc.liveEntries(), 2u);
        EXPECT_TRUE(emc.lookup(keyC).has_value());
        EXPECT_EQ(emc.lookup(keyA).has_value(), !r.expectAEvicted);
        EXPECT_EQ(emc.lookup(keyB).has_value(), r.expectAEvicted);
    }
}

/**
 * Eviction determinism: the same insert/erase stream leaves two
 * managed caches with byte-identical slabs and identical counters —
 * with and without access tracing, so the traced twin really is the
 * same algorithm plus a recorder.
 */
TEST(EmcManaged, SameStreamSameSlabTracedOrNot)
{
    constexpr std::uint64_t entries = 256;
    constexpr std::uint64_t seed = 0x5eed;

    SimMemory memA(4ull << 20), memB(4ull << 20);
    ExactMatchCache a(memA, entries, seed), b(memB, entries, seed);
    a.enableManaged();
    b.enableManaged();
    ASSERT_EQ(a.footprintBytes(), b.footprintBytes());

    AccessTrace trace;
    std::uint64_t x = 0x1234567ull;
    auto next = [&x] { // xorshift: deterministic op stream
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };
    for (int op = 0; op < 20000; ++op) {
        if (op % 512 == 0) {
            a.setEpoch(static_cast<std::uint16_t>(op / 512));
            b.setEpoch(static_cast<std::uint16_t>(op / 512));
        }
        const std::uint64_t r = next();
        const auto key = keyForId(r % 1024); // 4x capacity: conflicts
        if (r % 8 == 0) {
            EXPECT_EQ(a.erase(key), b.erase(key));
        } else {
            trace.clear();
            const std::uint64_t slotA = a.insert(key, r, &trace);
            const std::uint64_t slotB = b.insert(key, r, nullptr);
            EXPECT_EQ(slotA, slotB);
            EXPECT_FALSE(trace.empty());
        }
    }

    EXPECT_GT(a.evictOverwrites(), 0u) << "stream never conflicted";
    EXPECT_EQ(a.evictOverwrites(), b.evictOverwrites());
    EXPECT_EQ(a.liveEntries(), b.liveEntries());
    EXPECT_EQ(a.lookupHits(), 0u); // inserts/erases never count lookups

    std::vector<std::uint8_t> slab(a.footprintBytes());
    memA.read(a.baseAddr(), slab.data(), slab.size());
    EXPECT_TRUE(memB.equals(b.baseAddr(), slab.data(), slab.size()));
}

/**
 * Managed transitions under lookups: setEnabled is advisory (the data
 * path checks it), setActiveEntries re-ranges in O(1) and starts the
 * new range cold so no stale entry can alias, and liveEntries tracks
 * fills/overwrites/erases exactly.
 */
TEST(EmcManaged, ResizeStartsColdAndTracksOccupancy)
{
    SimMemory mem(4ull << 20);
    ExactMatchCache emc(mem, 1024, 0x77);
    emc.enableManaged();
    EXPECT_TRUE(emc.enabled());
    EXPECT_EQ(emc.activeEntries(), 1024u);

    for (std::uint64_t id = 0; id < 200; ++id)
        emc.insert(keyForId(id), id);
    const std::uint64_t live = emc.liveEntries();
    EXPECT_GT(live, 0u);
    EXPECT_EQ(live + emc.evictOverwrites(), 200u);

    const std::uint64_t clearsBefore = emc.clearCount();
    emc.setActiveEntries(256);
    EXPECT_EQ(emc.activeEntries(), 256u);
    EXPECT_EQ(emc.liveEntries(), 0u);
    EXPECT_EQ(emc.clearCount(), clearsBefore + 1);
    // Every pre-resize entry is gone (generation bump), even those
    // whose slot still lies inside the shrunk range.
    for (std::uint64_t id = 0; id < 200; ++id)
        EXPECT_FALSE(emc.lookup(keyForId(id)).has_value());

    emc.setEnabled(false);
    EXPECT_FALSE(emc.enabled());
    emc.setEnabled(true);
    EXPECT_TRUE(emc.enabled());
}

// ---------------------------------------------------------------------
// Decoupled-runtime integration: the controller acts on live traffic.
// ---------------------------------------------------------------------

/**
 * End to end (modeled on Runtime.DecoupledSlowPathInstallsResolvesAndAges):
 * a scan workload (every packet a new flow) must drive the controller
 * to disable the shard's EMC; switching to a small repeating flow set
 * must re-enable it. Runs under ASan and TSan in CI — the estimator
 * observe/closeWindow handoff and the enabled-flag transitions are
 * exactly the relaxed-atomic paths the design claims are race-free.
 */
TEST(Runtime, AdaptiveEmcDisablesOnScanAndReenablesOnReuse)
{
    RuleSet of;
    FlowRule fallback;
    fallback.mask = FlowMask{};
    fallback.priority = 1;
    fallback.action = Action{ActionKind::Forward, 7};
    of.push_back(fallback);

    RuntimeConfig cfg;
    cfg.numWorkers = 1;
    cfg.ringCapacity = 256;
    cfg.batchSize = 16;
    cfg.shardMemBytes = 512ull << 20;
    cfg.enqueueRetries = 1024; // single-CPU CI: yield to the worker
    cfg.rss.symmetric = true;
    cfg.decoupled = true;
    cfg.openflowRules = &of;
    cfg.warmTables = false;
    cfg.shard.vswitch.tupleConfig.tupleCapacity = 1u << 16;
    cfg.revalidator.sweepIntervalMicros = 200;
    cfg.revalidator.idleTimeoutEpochs = 2;
    cfg.emcPolicy.adaptive = true;
    cfg.emcPolicy.minWindowSamples = 32;
    cfg.emcPolicy.estimatorSampleShift = 0;
    const RuleSet empty;
    Runtime rt(cfg, empty);
    ASSERT_NE(rt.flowEstimator(0), nullptr);
    rt.start();

    auto offerId = [&rt](std::uint64_t id) {
        FiveTuple t;
        t.srcIp = 0x0a000000u | static_cast<std::uint32_t>(id & 0xffffff);
        t.dstIp = 0xc0a80001u;
        t.srcPort = static_cast<std::uint16_t>(1024 + (id >> 24));
        t.dstPort = 443;
        rt.offer(Packet::fromTuple(t), t);
    };

    // Phase 1: pure scan — every packet a brand-new flow, repeat
    // fraction ~0. The controller must disable the EMC.
    std::uint64_t id = 0;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(20);
    while (rt.snapshot().revalidator.ctrlDisables == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        for (int i = 0; i < 500; ++i)
            offerId(id++);
    }
    EXPECT_GE(rt.snapshot().revalidator.ctrlDisables, 1u);
    EXPECT_FALSE(rt.worker(0).vswitch().emc().enabled());
    EXPECT_GT(rt.flowEstimator(0)->windowsClosed(), 0u);

    // Phase 2: a small repeating set — repeat fraction ~1 and the
    // working set fits, so the controller must re-enable the cache.
    // Eight flows, not more: under TSan on one core a control window
    // may catch only ~minWindowSamples packets, and the window's
    // repeat fraction is 1 - distinct/samples — the reuse set must be
    // small against the worst-case window or slow hosts look like a
    // scan and the controller (correctly) holds.
    deadline = std::chrono::steady_clock::now() +
               std::chrono::seconds(20);
    while (rt.snapshot().revalidator.ctrlEnables == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        for (int i = 0; i < 500; ++i)
            offerId(i % 8);
    }
    EXPECT_GE(rt.snapshot().revalidator.ctrlEnables, 1u);
    EXPECT_TRUE(rt.worker(0).vswitch().emc().enabled());

    rt.drain();
    rt.stop();
    const RuntimeSnapshot fin = rt.snapshot();
    EXPECT_EQ(fin.processed, fin.enqueued);
    EXPECT_GT(fin.revalidator.sweeps, 0u);
}
