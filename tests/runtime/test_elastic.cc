/**
 * Elastic-runtime tests (DESIGN.md §17).
 *
 * Layers, bottom up:
 *   - FlowOrderValidator: the order oracle itself.
 *   - decideRebalance(): the pure policy matrix — imbalance detection,
 *     hysteresis, cooldown, split requests, park victim selection and
 *     evacuation, unpark-on-pressure — no threads involved.
 *   - Migration fence: the drain-then-remap protocol driven by hand on
 *     stopped workers, so the gate's effect is deterministic.
 *   - End to end: forced migrations under churn with the decoupled
 *     slow path live must never reorder packets within a flow; parking
 *     and waking must lose nothing.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <span>
#include <thread>
#include <vector>

#include "flow/ruleset.hh"
#include "runtime/elastic_controller.hh"
#include "runtime/order_validator.hh"
#include "runtime/runtime.hh"
#include "sim/random.hh"

using namespace halo;

namespace {

FiveTuple
randomTuple(Xoshiro256 &rng)
{
    FiveTuple t;
    t.srcIp = static_cast<std::uint32_t>(rng.next());
    t.dstIp = static_cast<std::uint32_t>(rng.next());
    t.srcPort = static_cast<std::uint16_t>(rng.next());
    t.dstPort = static_cast<std::uint16_t>(rng.next());
    t.proto = (rng.next() & 1) ? 6 : 17;
    return t;
}

std::vector<ShardLoadSnapshot>
shardsWithBusy(std::initializer_list<double> busy)
{
    std::vector<ShardLoadSnapshot> s;
    for (double b : busy) {
        ShardLoadSnapshot snap;
        snap.busyFraction = b;
        s.push_back(snap);
    }
    return s;
}

BucketLoad
bucket(unsigned shard, std::uint64_t packets, std::uint64_t flows = 1)
{
    BucketLoad b;
    b.shard = shard;
    b.packets = packets;
    b.flows = flows;
    return b;
}

bool
waitFor(const std::function<bool()> &pred, int seconds = 10)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(seconds);
    while (!pred()) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return true;
}

} // namespace

// ---------------------------------------------------------------------
// FlowOrderValidator
// ---------------------------------------------------------------------

TEST(FlowOrderValidator, OrderTagRoundTripsThroughPacket)
{
    Xoshiro256 rng(0x11);
    const FiveTuple t = randomTuple(rng);
    Packet p = Packet::fromTuple(t);
    const std::uint64_t tag = (42ull << 32) | 7;
    p.stampOrderTag(tag);
    EXPECT_EQ(p.orderTag(), tag);
}

TEST(FlowOrderValidator, CountsSequenceRegressionsPerFlow)
{
    Xoshiro256 rng(0x22);
    Packet p = Packet::fromTuple(randomTuple(rng));
    FlowOrderValidator v(4);

    p.stampOrderTag((2ull << 32) | 0);
    v.observe(p);
    p.stampOrderTag((2ull << 32) | 1);
    v.observe(p);
    EXPECT_EQ(v.violations(), 0u);
    EXPECT_EQ(v.observed(), 2u);

    p.stampOrderTag((2ull << 32) | 1); // duplicate
    v.observe(p);
    EXPECT_EQ(v.violations(), 1u);
    p.stampOrderTag((2ull << 32) | 0); // regression
    v.observe(p);
    EXPECT_EQ(v.violations(), 2u);

    // Flows are independent; ids past the table are ignored.
    p.stampOrderTag((3ull << 32) | 5);
    v.observe(p);
    p.stampOrderTag((9ull << 32) | 1);
    v.observe(p);
    EXPECT_EQ(v.violations(), 2u);
}

// ---------------------------------------------------------------------
// decideRebalance: the pure policy matrix
// ---------------------------------------------------------------------

TEST(DecideRebalance, BalancedLoadIsANoOp)
{
    ElasticConfig cfg;
    ElasticEpochState st;
    RebalanceInputs in;
    const auto shards = shardsWithBusy({0.5, 0.5, 0.5});
    const std::vector<BucketLoad> buckets = {
        bucket(0, 100), bucket(1, 100), bucket(2, 100)};
    in.shards = shards;
    in.buckets = buckets;

    const RebalanceDecision d = decideRebalance(cfg, in, st);
    EXPECT_FALSE(d.imbalanced);
    EXPECT_FALSE(d.lowLoad);
    EXPECT_TRUE(d.migrations.empty());
    EXPECT_FALSE(d.splitTable);
    EXPECT_EQ(d.park, -1);
    EXPECT_EQ(d.unpark, -1);
    EXPECT_DOUBLE_EQ(d.maxBusy, 0.5);
    EXPECT_DOUBLE_EQ(d.meanBusy, 0.5);
}

TEST(DecideRebalance, IdleSkewBelowMinBusyDoesNotTrip)
{
    ElasticConfig cfg; // minBusyToAct = 0.05
    ElasticEpochState st;
    RebalanceInputs in;
    const auto shards = shardsWithBusy({0.04, 0.0});
    const std::vector<BucketLoad> buckets = {bucket(0, 10),
                                             bucket(1, 0)};
    in.shards = shards;
    in.buckets = buckets;

    const RebalanceDecision d = decideRebalance(cfg, in, st);
    EXPECT_FALSE(d.imbalanced);
    EXPECT_TRUE(d.migrations.empty());
}

TEST(DecideRebalance, SingleActiveWorkerNeverImbalanced)
{
    ElasticConfig cfg;
    ElasticEpochState st;
    RebalanceInputs in;
    const auto shards = shardsWithBusy({0.9});
    const std::vector<BucketLoad> buckets = {bucket(0, 100)};
    in.shards = shards;
    in.buckets = buckets;
    const RebalanceDecision d = decideRebalance(cfg, in, st);
    EXPECT_FALSE(d.imbalanced);
    EXPECT_TRUE(d.migrations.empty());
    EXPECT_EQ(d.park, -1);
}

TEST(DecideRebalance, HysteresisThenMigrationThenCooldown)
{
    ElasticConfig cfg;
    cfg.hysteresisEpochs = 2;
    cfg.cooldownEpochs = 2;
    ElasticEpochState st;
    RebalanceInputs in;
    // Worker 0 hot; bucket 0 is hotter than the whole excess (left for
    // splitting), bucket 1 is the movable one.
    const auto shards = shardsWithBusy({0.8, 0.1});
    const std::vector<BucketLoad> buckets = {
        bucket(0, 300, 4), bucket(0, 100, 2), bucket(1, 50),
        bucket(1, 50)};
    in.shards = shards;
    in.buckets = buckets;

    // Epoch 1: imbalance seen, hysteresis holds fire.
    RebalanceDecision d = decideRebalance(cfg, in, st);
    EXPECT_TRUE(d.imbalanced);
    EXPECT_TRUE(d.migrations.empty());
    EXPECT_EQ(st.imbalancedEpochs, 1u);

    // Epoch 2: streak reached — migrate bucket 1 off the hot shard.
    d = decideRebalance(cfg, in, st);
    ASSERT_EQ(d.migrations.size(), 1u);
    EXPECT_EQ(d.migrations[0].bucket, 1u);
    EXPECT_EQ(d.migrations[0].from, 0u);
    EXPECT_EQ(d.migrations[0].to, 1u);
    EXPECT_EQ(st.cooldown, cfg.cooldownEpochs);

    // Epochs 3-4: cooldown suppresses actuation while the streak
    // advances underneath.
    d = decideRebalance(cfg, in, st);
    EXPECT_TRUE(d.migrations.empty());
    d = decideRebalance(cfg, in, st);
    EXPECT_TRUE(d.migrations.empty());

    // Epoch 5: cooldown expired, persistent imbalance fires again.
    d = decideRebalance(cfg, in, st);
    EXPECT_EQ(d.migrations.size(), 1u);
}

TEST(DecideRebalance, MigrationsTargetColdestAndRespectCap)
{
    ElasticConfig cfg;
    cfg.hysteresisEpochs = 1;
    cfg.maxMigrationsPerEpoch = 1;
    ElasticEpochState st;
    RebalanceInputs in;
    const auto shards = shardsWithBusy({0.8, 0.3, 0.1});
    // Hot shard 0 has four equally warm buckets; shard 2 is coldest.
    const std::vector<BucketLoad> buckets = {
        bucket(0, 100), bucket(0, 100), bucket(0, 100),
        bucket(0, 100), bucket(1, 80),  bucket(2, 20)};
    in.shards = shards;
    in.buckets = buckets;

    const RebalanceDecision d = decideRebalance(cfg, in, st);
    ASSERT_EQ(d.migrations.size(), 1u); // capped
    EXPECT_EQ(d.migrations[0].from, 0u);
    EXPECT_EQ(d.migrations[0].to, 2u); // coldest by packet count
}

TEST(DecideRebalance, DominantBucketRequestsSplitWithHeadroom)
{
    ElasticConfig cfg;
    cfg.hysteresisEpochs = 1;
    ElasticEpochState st;
    RebalanceInputs in;
    const auto shards = shardsWithBusy({0.8, 0.1});
    // Bucket 0 carries 75% of the hot shard and holds several flows.
    std::vector<BucketLoad> buckets = {
        bucket(0, 600, 2), bucket(0, 200, 1), bucket(1, 50),
        bucket(1, 50)};
    in.shards = shards;
    in.buckets = buckets;
    in.maxTableEntries = 16;

    RebalanceDecision d = decideRebalance(cfg, in, st);
    EXPECT_TRUE(d.splitTable);

    // A single flow cannot be split.
    st = ElasticEpochState{};
    buckets[0].flows = 1;
    in.buckets = buckets;
    d = decideRebalance(cfg, in, st);
    EXPECT_FALSE(d.splitTable);

    // No table headroom, no split.
    st = ElasticEpochState{};
    buckets[0].flows = 2;
    in.buckets = buckets;
    in.maxTableEntries = 4; // already at size
    d = decideRebalance(cfg, in, st);
    EXPECT_FALSE(d.splitTable);
}

TEST(DecideRebalance, SustainedLowLoadParksAndEvacuatesVictim)
{
    ElasticConfig cfg;
    cfg.parkAfterEpochs = 2;
    ElasticEpochState st;
    RebalanceInputs in;
    const auto shards = shardsWithBusy({0.02, 0.03, 0.01});
    const std::vector<BucketLoad> buckets = {
        bucket(0, 5), bucket(1, 5), bucket(2, 5),
        bucket(0, 5), bucket(1, 5), bucket(2, 5)};
    in.shards = shards;
    in.buckets = buckets;

    RebalanceDecision d = decideRebalance(cfg, in, st);
    EXPECT_TRUE(d.lowLoad);
    EXPECT_EQ(d.park, -1); // streak not reached

    d = decideRebalance(cfg, in, st);
    EXPECT_EQ(d.park, 2); // highest-id active worker goes first
    // Full evacuation: every victim bucket is remapped to a survivor.
    ASSERT_EQ(d.migrations.size(), 2u);
    for (const auto &m : d.migrations) {
        EXPECT_EQ(m.from, 2u);
        EXPECT_LT(m.to, 2u);
    }
    EXPECT_NE(d.migrations[0].bucket, d.migrations[1].bucket);
}

TEST(DecideRebalance, ParkRespectsMinActiveWorkers)
{
    ElasticConfig cfg;
    cfg.parkAfterEpochs = 1;
    cfg.minActiveWorkers = 2;
    ElasticEpochState st;
    RebalanceInputs in;
    const auto shards = shardsWithBusy({0.01, 0.01});
    const std::vector<BucketLoad> buckets = {bucket(0, 1),
                                             bucket(1, 1)};
    in.shards = shards;
    in.buckets = buckets;

    for (int e = 0; e < 4; ++e) {
        const RebalanceDecision d = decideRebalance(cfg, in, st);
        EXPECT_EQ(d.park, -1);
    }
}

TEST(DecideRebalance, PressureUnparksAndFeedsTheWokenWorker)
{
    ElasticConfig cfg; // unparkBusyFraction = 0.60
    ElasticEpochState st;
    RebalanceInputs in;
    auto shards = shardsWithBusy({0.9, 0.8, 0.0});
    shards[2].parked = true;
    // Hot shard 0: three buckets; roughly half the heat should follow
    // the woken worker.
    const std::vector<BucketLoad> buckets = {
        bucket(0, 100), bucket(0, 80), bucket(0, 60), bucket(1, 90)};
    in.shards = shards;
    in.buckets = buckets;

    const RebalanceDecision d = decideRebalance(cfg, in, st);
    EXPECT_EQ(d.unpark, 2);
    ASSERT_EQ(d.migrations.size(), 2u); // 100+80, then half reached
    for (const auto &m : d.migrations) {
        EXPECT_EQ(m.from, 0u);
        EXPECT_EQ(m.to, 2u);
    }
    EXPECT_EQ(st.cooldown, cfg.cooldownEpochs);
}

// ---------------------------------------------------------------------
// The drain-then-remap fence, deterministically
// ---------------------------------------------------------------------

/**
 * Protocol unit test with the controller thread never started and the
 * workers started one at a time: after the flip, the destination must
 * sit gated — processing nothing — until the source worker's processed
 * count passes the fence, then drain normally.
 */
TEST(ElasticController, MigrationGateHoldsDestinationUntilSourceDrains)
{
    RuntimeConfig cfg;
    cfg.numWorkers = 2;
    cfg.ringCapacity = 1024;
    cfg.batchSize = 16;
    cfg.shardMemBytes = 256ull << 20;
    const RuleSet empty;
    Runtime rt(cfg, empty); // elastic disabled: no controller thread

    // A tuple currently steered to worker 0.
    Xoshiro256 rng(0x5150);
    FiveTuple t;
    unsigned b = 0;
    do {
        t = randomTuple(rng);
        b = rt.dispatcher().bucketFor(t);
    } while (rt.dispatcher().entry(b) != 0);

    const std::uint64_t kBefore = 100;
    for (std::uint64_t i = 0; i < kBefore; ++i)
        ASSERT_TRUE(rt.offer(Packet::fromTuple(t), t));
    ASSERT_EQ(rt.worker(0).ring().size(), kBefore);

    ElasticController::Hooks hooks;
    hooks.rss = &rt.dispatcher();
    hooks.workers = {&rt.worker(0), &rt.worker(1)};
    hooks.offerSeq = &rt.offerSeq();
    ElasticConfig ecfg;
    ecfg.enabled = true;
    ElasticController ctrl(ecfg, hooks); // thread not started

    // Flip + grace + fence + gate; waitMicros = 0 leaves the gate
    // armed for this test to reason about.
    const RebalanceDecision::Migration m{b, 0, 1};
    ctrl.migrateBuckets(
        std::span<const RebalanceDecision::Migration>(&m, 1), 0);
    EXPECT_EQ(rt.dispatcher().entry(b), 1u);
    EXPECT_TRUE(rt.worker(1).migrationGateActive());
    EXPECT_TRUE(ctrl.anyGateActive());
    EXPECT_EQ(ctrl.counters().migrations, 1u);
    EXPECT_EQ(ctrl.counters().gateTimeouts, 0u);
    // One gate at a time per destination.
    EXPECT_FALSE(rt.worker(1).armMigrationGate(&rt.worker(0), 1));

    // Post-flip traffic of the same flow lands on the destination.
    const std::uint64_t kAfter = 50;
    for (std::uint64_t i = 0; i < kAfter; ++i)
        ASSERT_TRUE(rt.offer(Packet::fromTuple(t), t));
    ASSERT_EQ(rt.worker(1).ring().size(), kAfter);

    // Destination runs but is gated: its ring stays untouched.
    rt.worker(1).start();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(rt.worker(1).counters().packets, 0u);
    EXPECT_TRUE(rt.worker(1).migrationGateActive());

    // Source drains past the fence; the gate self-clears and the
    // destination proceeds.
    rt.worker(0).start();
    ASSERT_TRUE(waitFor([&] {
        return rt.worker(1).counters().packets == kAfter;
    }));
    EXPECT_EQ(rt.worker(0).counters().packets, kBefore);
    EXPECT_FALSE(rt.worker(1).migrationGateActive());

    rt.stop();
}

// ---------------------------------------------------------------------
// End to end
// ---------------------------------------------------------------------

/**
 * Zero intra-flow reordering across migrations: skewed stamped traffic
 * with the decoupled slow path installing flows live, while forced
 * migrations bounce the hot flow's bucket between shards. The order
 * oracle must see every flow's sequence strictly advance.
 */
TEST(ElasticRuntime, MigrationsPreserveIntraFlowOrderUnderChurn)
{
    RuleSet of;
    FlowRule fallback;
    fallback.mask = FlowMask{};
    fallback.priority = 1;
    fallback.action = Action{ActionKind::Forward, 7};
    of.push_back(fallback);

    const std::size_t kFlows = 256;
    FlowOrderValidator oracle(kFlows);

    RuntimeConfig cfg;
    cfg.numWorkers = 2;
    cfg.ringCapacity = 256;
    cfg.batchSize = 16;
    cfg.shardMemBytes = 256ull << 20;
    cfg.enqueueRetries = 1024;
    cfg.rss.symmetric = true;
    cfg.rss.tableEntries = 32;
    cfg.rss.maxTableEntries = 128;
    cfg.decoupled = true;
    cfg.openflowRules = &of;
    cfg.warmTables = false;
    cfg.shard.vswitch.tupleConfig.tupleCapacity = 8192;
    cfg.orderValidator = &oracle;
    cfg.elastic.enabled = true;
    cfg.elastic.controlIntervalMicros = 500;
    cfg.elastic.hysteresisEpochs = 1;
    cfg.elastic.cooldownEpochs = 0;
    const RuleSet empty;
    Runtime rt(cfg, empty);
    rt.start();

    std::vector<FiveTuple> flows(kFlows);
    for (std::size_t f = 0; f < kFlows; ++f) {
        FiveTuple &t = flows[f];
        t.srcIp = 0x0a000001u + static_cast<std::uint32_t>(f);
        t.dstIp = 0x0a010001u + static_cast<std::uint32_t>(f * 7);
        t.srcPort = static_cast<std::uint16_t>(1024 + f);
        t.dstPort = 80;
        t.proto = 17;
    }
    std::vector<std::uint32_t> seq(kFlows, 0);
    const unsigned hotBucket = rt.dispatcher().bucketFor(flows[0]);

    const std::uint64_t kPackets = 40000;
    unsigned round = 0;
    for (std::uint64_t i = 0; i < kPackets; ++i) {
        // Half the traffic hammers flow 0 (the Zipf head); the rest
        // cycles the tail.
        const std::size_t f =
            (i & 1) ? 0 : (static_cast<std::size_t>(i) >> 1) % kFlows;
        const FiveTuple &t = flows[f];
        Packet p = Packet::fromTuple(t);
        p.stampOrderTag((static_cast<std::uint64_t>(f) << 32) |
                        seq[f]++);
        rt.offer(std::move(p), t);
        if (i % 4000 == 3999) {
            // Bounce the hot bucket between the shards mid-traffic.
            rt.elastic()->requestMigration(hotBucket,
                                           round++ % cfg.numWorkers);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
    }
    rt.drain();

    // The forced bounces guarantee real flips happened.
    ASSERT_TRUE(waitFor(
        [&] { return rt.elastic()->counters().migrations > 0; }));
    EXPECT_GT(rt.elastic()->counters().epochs, 0u);

    rt.stop();
    const RuntimeSnapshot fin = rt.snapshot();
    EXPECT_EQ(fin.processed, fin.enqueued);
    EXPECT_GT(oracle.observed(), 0u);
    EXPECT_EQ(oracle.violations(), 0u);
    EXPECT_EQ(rt.elastic()->counters().gateTimeouts, 0u);
}

/**
 * Park/wake lifecycle: sustained idle parks the highest worker with
 * its buckets evacuated first; a migration targeting the parked worker
 * wakes it; nothing offered is ever lost.
 */
TEST(ElasticRuntime, ParksIdleWorkerAndWakesItForMigration)
{
    RuleSet of;
    FlowRule fallback;
    fallback.mask = FlowMask{};
    fallback.priority = 1;
    fallback.action = Action{ActionKind::Forward, 1};
    of.push_back(fallback);

    RuntimeConfig cfg;
    cfg.numWorkers = 2;
    cfg.ringCapacity = 256;
    cfg.batchSize = 16;
    cfg.shardMemBytes = 256ull << 20;
    cfg.enqueueRetries = 1024;
    cfg.decoupled = true;
    cfg.openflowRules = &of;
    cfg.warmTables = false;
    cfg.shard.vswitch.tupleConfig.tupleCapacity = 4096;
    cfg.elastic.enabled = true;
    cfg.elastic.controlIntervalMicros = 500;
    cfg.elastic.parkBusyFraction = 0.9; // idle counts as low load
    cfg.elastic.parkAfterEpochs = 2;
    cfg.elastic.cooldownEpochs = 0;
    cfg.elastic.hysteresisEpochs = 100;   // keep imbalance out of play
    cfg.elastic.unparkBusyFraction = 2.0; // policy unpark off
    const RuleSet empty;
    Runtime rt(cfg, empty);
    rt.start();

    // Idle runtime: worker 1 parks, fully evacuated first.
    ASSERT_TRUE(waitFor([&] { return rt.worker(1).parked(); }));
    EXPECT_GE(rt.elastic()->counters().parks, 1u);
    for (unsigned b = 0; b < rt.dispatcher().tableEntries(); ++b)
        EXPECT_EQ(rt.dispatcher().entry(b), 0u) << "bucket " << b;
    // The published load snapshot reflects the park within an epoch.
    EXPECT_TRUE(waitFor([&] {
        return rt.elastic()->shardLoad(1).parked ||
               !rt.worker(1).parked();
    }));

    // A migration whose destination is parked wakes it.
    rt.elastic()->requestMigration(0, 1);
    ASSERT_TRUE(waitFor([&] {
        return rt.dispatcher().entry(0) == 1 &&
               !rt.worker(1).parked();
    }));
    EXPECT_GE(rt.elastic()->counters().migrations, 1u);

    // Traffic through the moved bucket (and everywhere else) drains
    // without loss, whatever the controller does meanwhile.
    Xoshiro256 rng(0x7272);
    for (int i = 0; i < 2000; ++i) {
        const FiveTuple t = randomTuple(rng);
        rt.offer(Packet::fromTuple(t), t);
    }
    rt.drain();
    rt.stop();
    const RuntimeSnapshot fin = rt.snapshot();
    EXPECT_EQ(fin.processed, fin.enqueued);
    EXPECT_EQ(fin.enqueued + fin.ringFullDrops, fin.offered);
}

TEST(ElasticRuntime, RegistersControllerAndShardMetrics)
{
    RuntimeConfig cfg;
    cfg.numWorkers = 2;
    cfg.shardMemBytes = 256ull << 20;
    cfg.elastic.enabled = true;
    const RuleSet empty;
    Runtime rt(cfg, empty);

    obs::MetricsRegistry reg;
    rt.registerMetrics(reg);
    const std::string text = reg.renderPrometheus();
    for (const char *name :
         {"halo_ctrl_epochs", "halo_ctrl_migrations", "halo_ctrl_splits",
          "halo_ctrl_parks", "halo_shard_busy_fraction",
          "halo_shard_ring_depth_hwm", "halo_shard_flow_estimate",
          "halo_worker_parked", "halo_rss_bucket_flows",
          "halo_rss_table_grows"})
        EXPECT_NE(text.find(name), std::string::npos) << name;
}
