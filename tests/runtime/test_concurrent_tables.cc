/**
 * Concurrent-mode stress for the seqlocked tables (hash/seqlock.hh):
 * one writer thread mutating a CuckooHashTable / ExactMatchCache while
 * data-path readers run lock-free optimistic lookups. These tests are
 * the TSan CI job's evidence that the single-writer protocol the
 * decoupled runtime relies on (revalidator writes, workers read) is
 * race-free, and that readers never observe torn entries: a hit must
 * return exactly the value that key was inserted with.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "flow/emc.hh"
#include "hash/cuckoo_table.hh"
#include "mem/sim_memory.hh"

using namespace halo;

namespace {

std::array<std::uint8_t, 16>
keyForId(std::uint64_t id)
{
    std::array<std::uint8_t, 16> key{};
    std::memcpy(key.data(), &id, sizeof(id));
    const std::uint64_t mixed = id * 0x9e3779b97f4a7c15ull;
    std::memcpy(key.data() + 8, &mixed, sizeof(mixed));
    return key;
}

/** The value a key must carry if it is present at all. */
std::uint64_t
valueForId(std::uint64_t id)
{
    return (id << 8) | 0xabu;
}

} // namespace

/**
 * Readers race a writer that inserts (with cuckoo displacement at high
 * load) and erases. An optimistic reader may miss a key in motion —
 * that is the protocol's contract — but a hit must never be torn:
 * the returned value always matches the key looked up.
 */
TEST(ConcurrentTables, CuckooReadersNeverSeeTornEntries)
{
    SimMemory mem(64ull << 20);
    CuckooHashTable::Config cfg;
    // 30000/0.95 rounds up to 32768 slots: filling the whole keyRange
    // drives ~91% occupancy, so inserts displace (cuckoo moves) while
    // the readers run.
    cfg.capacity = 30000;
    CuckooHashTable table(mem, cfg);
    table.enableConcurrent();

    constexpr std::uint64_t keyRange = 30000;
    constexpr std::uint64_t writerOps = 3 * keyRange;
    std::atomic<unsigned> readersRunning{0};
    std::atomic<bool> done{false};

    std::vector<std::thread> readers;
    for (unsigned r = 0; r < 3; ++r) {
        readers.emplace_back([&, r] {
            readersRunning.fetch_add(1, std::memory_order_release);
            std::uint64_t id = r * 17;
            std::uint64_t hits = 0;
            while (!done.load(std::memory_order_acquire)) {
                id = (id + 31) % keyRange;
                const auto key = keyForId(id);
                const auto v = table.lookup(
                    KeyView(key.data(), key.size()));
                if (v) {
                    ASSERT_EQ(*v, valueForId(id))
                        << "torn read of key " << id;
                    ++hits;
                }
            }
            EXPECT_GT(hits, 0u);
        });
    }
    while (readersRunning.load(std::memory_order_acquire) < 3)
        std::this_thread::yield();

    // Single writer: fill toward the load-factor ceiling (forcing
    // displacement chains), then churn insert/erase over the range.
    for (std::uint64_t op = 0; op < writerOps; ++op) {
        const std::uint64_t id = op % keyRange;
        const auto key = keyForId(id);
        if (op < keyRange || (op & 3) != 0)
            table.insert(KeyView(key.data(), key.size()),
                         valueForId(id));
        else
            table.erase(KeyView(key.data(), key.size()));
    }
    done.store(true, std::memory_order_release);
    for (auto &t : readers)
        t.join();

    EXPECT_GT(table.cuckooMoves(), 0u)
        << "stress never exercised displacement";
}

/**
 * The filtered concurrent path: with both lookup filters armed (EMOMA
 * steering counters + Cuckoo++ aux bytes) the writer mutates filter
 * state inside the same seqlock sections as the bucket entries, and
 * optimistic readers consult the counters through atomic loads. A
 * stale steer or Bloom verdict may cost a retry or a transient miss —
 * never a torn or wrong value. Readers also poll the published
 * counters (size/loadFactor/cuckooMoves) and run the bulk pipeline,
 * covering every reader entry point the runtime uses.
 */
TEST(ConcurrentTables, FilteredCuckooReadersNeverSeeTornEntries)
{
    SimMemory mem(128ull << 20);
    CuckooHashTable::Config cfg;
    cfg.capacity = 30000;
    cfg.filter = CuckooFilter::Both;
    CuckooHashTable table(mem, cfg);
    table.enableConcurrent();

    constexpr std::uint64_t keyRange = 30000;
    constexpr std::uint64_t writerOps = 3 * keyRange;
    std::atomic<unsigned> readersRunning{0};
    std::atomic<bool> done{false};

    std::vector<std::thread> readers;
    for (unsigned r = 0; r < 3; ++r) {
        readers.emplace_back([&, r] {
            readersRunning.fetch_add(1, std::memory_order_release);
            std::uint64_t id = r * 19;
            std::uint64_t hits = 0;
            std::array<std::array<std::uint8_t, 16>, maxBulkLanes> keys;
            std::array<const std::uint8_t *, maxBulkLanes> ptrs;
            std::uint64_t values[maxBulkLanes];
            while (!done.load(std::memory_order_acquire)) {
                id = (id + 37) % keyRange;
                const auto key = keyForId(id);
                const auto v =
                    table.lookup(KeyView(key.data(), key.size()));
                if (v) {
                    ASSERT_EQ(*v, valueForId(id))
                        << "torn read of key " << id;
                    ++hits;
                }
                if ((id & 63) == 0) {
                    // Bulk pipeline against the same churn.
                    for (unsigned lane = 0; lane < maxBulkLanes;
                         ++lane) {
                        keys[lane] =
                            keyForId((id + lane * 7) % keyRange);
                        ptrs[lane] = keys[lane].data();
                    }
                    const std::uint32_t mask = table.lookupUntracedBulk(
                        ptrs.data(), maxBulkLanes, values, nullptr);
                    for (unsigned lane = 0; lane < maxBulkLanes; ++lane)
                        if (mask >> lane & 1)
                            ASSERT_EQ(values[lane],
                                      valueForId(
                                          (id + lane * 7) % keyRange))
                                << "torn bulk read, lane " << lane;
                }
                if ((id & 255) == 0) {
                    // Published mirrors must stay readable and sane
                    // while the writer churns.
                    EXPECT_LE(table.size(), keyRange);
                    EXPECT_LE(table.loadFactor(), 1.0);
                    (void)table.cuckooMoves();
                }
            }
            EXPECT_GT(hits, 0u);
        });
    }
    while (readersRunning.load(std::memory_order_acquire) < 3)
        std::this_thread::yield();

    // Single writer: fill to ~91% occupancy (displacement churn keeps
    // the EMOMA counters and displaced-sig Blooms hot), then cycle
    // erase/insert with a moving timestamp epoch.
    for (std::uint64_t op = 0; op < writerOps; ++op) {
        const std::uint64_t id = op % keyRange;
        const auto key = keyForId(id);
        if ((op & 8191) == 0)
            table.setTimestampEpoch(
                static_cast<std::uint32_t>(op >> 13));
        if (op < keyRange || (op & 3) != 0)
            table.insert(KeyView(key.data(), key.size()),
                         valueForId(id));
        else
            table.erase(KeyView(key.data(), key.size()));
    }
    done.store(true, std::memory_order_release);
    for (auto &t : readers)
        t.join();

    EXPECT_GT(table.cuckooMoves(), 0u)
        << "stress never exercised displacement";
    EXPECT_FALSE(table.filterDegraded());
}

TEST(ConcurrentTables, EmcReadersNeverSeeTornEntries)
{
    SimMemory mem(16ull << 20);
    ExactMatchCache emc(mem, 1024);
    emc.enableConcurrent();

    constexpr std::uint64_t keyRange = 2048; // 2x entries: evictions
    constexpr std::uint64_t writerOps = 60000;
    std::atomic<unsigned> readersRunning{0};
    std::atomic<bool> done{false};

    std::vector<std::thread> readers;
    for (unsigned r = 0; r < 3; ++r) {
        readers.emplace_back([&, r] {
            readersRunning.fetch_add(1, std::memory_order_release);
            std::uint64_t id = r * 13;
            while (!done.load(std::memory_order_acquire)) {
                id = (id + 29) % keyRange;
                const auto key = keyForId(id);
                const auto v = emc.lookup(
                    std::span<const std::uint8_t, 16>(key));
                if (v) {
                    ASSERT_EQ(*v, valueForId(id))
                        << "torn read of key " << id;
                }
            }
        });
    }

    while (readersRunning.load(std::memory_order_acquire) < 3)
        std::this_thread::yield();

    for (std::uint64_t op = 0; op < writerOps; ++op) {
        const std::uint64_t id = op % keyRange;
        const auto key = keyForId(id);
        if ((op & 7) == 0)
            emc.erase(std::span<const std::uint8_t, 16>(key));
        else
            emc.insert(std::span<const std::uint8_t, 16>(key),
                       valueForId(id));
    }
    done.store(true, std::memory_order_release);
    for (auto &t : readers)
        t.join();
}

/**
 * Deterministic reader-retry: hold a bucket's seqlock exactly as a
 * writer mid-mutation would (debug hook), prove a concurrent reader
 * of that bucket parks in its retry loop instead of returning a torn
 * entry, then release and prove it completes with the correct value.
 */
TEST(ConcurrentTables, SeqlockHeldWriterParksReaderUntilRelease)
{
    SimMemory mem(16ull << 20);
    CuckooHashTable::Config cfg;
    cfg.capacity = 256;
    CuckooHashTable table(mem, cfg);
    table.enableConcurrent();

    const auto key = keyForId(42);
    const KeyView kv(key.data(), key.size());
    ASSERT_TRUE(table.insert(kv, valueForId(42)));
    ASSERT_EQ(table.lookup(kv), valueForId(42));
    const std::uint64_t retriesBefore = table.seqlockRetries();

    table.debugSeqWriteBegin(kv);

    std::atomic<bool> finished{false};
    std::optional<std::uint64_t> result;
    std::thread reader([&] {
        result = table.lookup(kv);
        finished.store(true, std::memory_order_release);
    });

    // The reader must be pinned in its retry loop while the "writer"
    // holds the bucket; give it ample time to prove it is stuck.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(finished.load(std::memory_order_acquire))
        << "reader returned while the bucket seqlock was held";

    table.debugSeqWriteEnd(kv);
    reader.join();
    ASSERT_TRUE(finished.load(std::memory_order_acquire));
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result, valueForId(42));
    EXPECT_GT(table.seqlockRetries(), retriesBefore);
}
