#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "flow/ruleset.hh"
#include "runtime/runtime.hh"
#include "vswitch/shard.hh"

using namespace halo;

namespace {

/** Small deterministic workload shared by the runtime tests. */
struct Workload
{
    TrafficConfig traffic;
    RuleSet rules;

    explicit Workload(std::uint64_t flows = 2000)
    {
        traffic = TrafficGenerator::scenarioConfig(
            TrafficScenario::SmallFlowCount, flows);
        TrafficGenerator gen(traffic);
        rules = scenarioRules(TrafficScenario::SmallFlowCount,
                              gen.flows(), 0x707);
    }
};

RuntimeConfig
smallConfig(unsigned workers)
{
    RuntimeConfig cfg;
    cfg.numWorkers = workers;
    cfg.ringCapacity = 256;
    cfg.batchSize = 16;
    cfg.shardMemBytes = 512ull << 20;
    cfg.enqueueRetries = 1024; // single-CPU CI: yield to starved workers
    cfg.rss.symmetric = true;
    return cfg;
}

} // namespace

/**
 * The SwitchShard constructor path must produce a datapath identical
 * to the hand-wired setup benches use: same packets in, same totals
 * (cycles, matches, EMC hits) out.
 */
TEST(SwitchShard, EquivalentToManualSetup)
{
    Workload wl(1000);

    // Hand-wired shard (what benches/examples used to inline).
    SimMemory manual_mem(512ull << 20);
    MemoryHierarchy manual_hier{HierarchyConfig{}};
    CoreModel manual_core(manual_hier, 0);
    VirtualSwitch manual_vs(manual_mem, manual_hier, manual_core,
                            nullptr, VSwitchConfig{});
    manual_vs.installRules(wl.rules);
    manual_vs.warmTables();

    // SwitchShard path.
    SimMemory shard_mem(512ull << 20);
    SwitchShard shard(shard_mem, ShardConfig{});
    shard.install(wl.rules);

    TrafficGenerator gen_a(wl.traffic);
    TrafficGenerator gen_b(wl.traffic);
    for (int i = 0; i < 2000; ++i) {
        manual_vs.processPacket(gen_a.nextPacket());
        shard.vswitch().processPacket(gen_b.nextPacket());
    }

    const SwitchTotals &a = manual_vs.totals();
    const SwitchTotals &b = shard.vswitch().totals();
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.matches, b.matches);
    EXPECT_EQ(a.emcHits, b.emcHits);
    EXPECT_EQ(a.total, b.total);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(Runtime, EndToEndAccountsEveryPacket)
{
    Workload wl;
    const std::uint64_t packets = 20000;
    Runtime rt(smallConfig(2), wl.rules);
    const RuntimeReport rep = rt.run(wl.traffic, packets);

    EXPECT_EQ(rep.aggregate.offered, packets);
    EXPECT_EQ(rep.aggregate.enqueued + rep.aggregate.ringFullDrops,
              packets);
    // Drain guarantee: everything enqueued was processed.
    EXPECT_EQ(rep.aggregate.processed, rep.aggregate.enqueued);
    EXPECT_GT(rep.aggregate.matched, 0u);
    EXPECT_GT(rep.aggregate.batches, 0u);
    EXPECT_GT(rep.wallSeconds, 0.0);

    // Per-worker reductions are consistent with the aggregate.
    ASSERT_EQ(rep.workers.size(), 2u);
    std::uint64_t sum = 0;
    for (const WorkerReport &w : rep.workers) {
        EXPECT_EQ(w.counters.packets, w.totals.packets);
        EXPECT_GE(w.batchP99Nanos, w.batchP50Nanos);
        sum += w.counters.packets;
    }
    EXPECT_EQ(sum, rep.aggregate.processed);
}

TEST(Runtime, SnapshotIsSafeAndMonotonicWhileRunning)
{
    Workload wl;
    const std::uint64_t packets = 30000;
    Runtime rt(smallConfig(2), wl.rules);
    rt.start();
    rt.startProducer(wl.traffic, packets);

    // Aggregator thread (this one) polls while workers publish — the
    // TSan job proves this is race-free.
    std::uint64_t last = 0;
    while (rt.snapshot().offered < packets) {
        const RuntimeSnapshot s = rt.snapshot();
        ASSERT_GE(s.processed, last);
        ASSERT_LE(s.processed, s.enqueued);
        last = s.processed;
        std::this_thread::yield();
    }

    rt.joinProducer();
    rt.drain();
    rt.stop();
    const RuntimeSnapshot fin = rt.snapshot();
    EXPECT_EQ(fin.processed, fin.enqueued);
    EXPECT_EQ(fin.offered, packets);
}

TEST(Runtime, RingFullBackpressureDropsAreCounted)
{
    Workload wl(200);
    RuntimeConfig cfg = smallConfig(1);
    cfg.ringCapacity = 8;
    cfg.enqueueRetries = 0; // drop immediately, never block
    Runtime rt(cfg, wl.rules);

    // No workers running: the ring fills and every further offer must
    // come back as a counted drop, with the producer never blocked.
    TrafficGenerator gen(wl.traffic);
    unsigned accepted = 0;
    for (int i = 0; i < 100; ++i) {
        const FiveTuple &t = gen.nextTuple();
        accepted += rt.offer(Packet::fromTuple(t), t) ? 1 : 0;
    }
    const RuntimeSnapshot s = rt.snapshot();
    EXPECT_EQ(s.offered, 100u);
    EXPECT_EQ(accepted, s.enqueued);
    EXPECT_EQ(s.enqueued, rt.worker(0).ring().capacity());
    EXPECT_EQ(s.ringFullDrops, 100u - s.enqueued);

    // Late-started workers still drain the backlog on stop.
    rt.start();
    rt.drain();
    rt.stop();
    EXPECT_EQ(rt.snapshot().processed, s.enqueued);
}

/**
 * End-to-end burst path: a runtime whose workers feed ring batches
 * through processBurst must account every packet and produce the same
 * simulated datapath work as the scalar per-packet runtime. Runs under
 * ASan and TSan in CI (worker threads + burst scratch reuse).
 */
TEST(Runtime, BurstWorkersMatchScalarRuntime)
{
    Workload wl(1000);
    const std::uint64_t packets = 20000;

    RuntimeConfig scalar_cfg = smallConfig(2);
    RuntimeConfig burst_cfg = smallConfig(2);
    burst_cfg.classifyBurst = 16;

    Runtime scalar_rt(scalar_cfg, wl.rules);
    Runtime burst_rt(burst_cfg, wl.rules);
    const RuntimeReport scalar_rep = scalar_rt.run(wl.traffic, packets);
    const RuntimeReport burst_rep = burst_rt.run(wl.traffic, packets);

    // Same accounting invariants as the scalar path.
    EXPECT_EQ(burst_rep.aggregate.offered, packets);
    EXPECT_EQ(burst_rep.aggregate.processed,
              burst_rep.aggregate.enqueued);

    // Ring-full drops depend on thread timing, so absolute totals can
    // differ between the two runs; per-packet simulated costs must not.
    // Aggregate over workers and compare the average simulated cycles
    // and instructions per processed packet: byte-identical
    // classification means these ratios agree exactly when both runs
    // process the same flows, and very tightly when drop sets differ.
    const auto perPacket = [](const RuntimeReport &rep) {
        std::uint64_t cycles = 0, insns = 0, pkts = 0;
        for (const WorkerReport &w : rep.workers) {
            cycles += w.totals.total;
            insns += w.totals.instructions;
            pkts += w.totals.packets;
        }
        EXPECT_GT(pkts, 0u);
        return std::pair<double, double>(
            static_cast<double>(cycles) / static_cast<double>(pkts),
            static_cast<double>(insns) / static_cast<double>(pkts));
    };
    const auto [scalar_cyc, scalar_insn] = perPacket(scalar_rep);
    const auto [burst_cyc, burst_insn] = perPacket(burst_rep);
    EXPECT_NEAR(burst_cyc, scalar_cyc, scalar_cyc * 0.02);
    EXPECT_NEAR(burst_insn, scalar_insn, scalar_insn * 0.02);

    // The burst runtime matched packets like the scalar one did.
    EXPECT_GT(burst_rep.aggregate.matched, 0u);
    EXPECT_GT(burst_rep.aggregate.emcHits, 0u);
}

/**
 * Decoupled slow path end to end: workers defer megaflow misses onto
 * the upcall ring, the revalidator resolves them against the OpenFlow
 * layer and installs exact-match entries into the live (seqlocked)
 * tables, and idle flows age out in the background — all while the
 * data path keeps running. Runs under ASan and TSan in CI.
 */
TEST(Runtime, DecoupledSlowPathInstallsResolvesAndAges)
{
    // Slow path: one match-all fallback, so every flow resolves.
    RuleSet of;
    FlowRule fallback;
    fallback.mask = FlowMask{};
    fallback.priority = 1;
    fallback.action = Action{ActionKind::Forward, 7};
    of.push_back(fallback);

    RuntimeConfig cfg = smallConfig(2);
    cfg.decoupled = true;
    cfg.openflowRules = &of;
    cfg.warmTables = false; // megaflow starts empty, faults in
    cfg.shard.vswitch.tupleConfig.tupleCapacity = 8192;
    cfg.revalidator.sweepIntervalMicros = 200;
    cfg.revalidator.idleTimeoutEpochs = 2;
    const RuleSet empty;
    Runtime rt(cfg, empty);
    rt.start();

    // Phase 1: a small flow set, repeated — first packets fault the
    // flows in through the revalidator, later rounds hit the installs.
    Workload wl(300);
    TrafficGenerator gen(wl.traffic);
    std::uint64_t offered = 0;
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 1000; ++i) {
            const FiveTuple &t = gen.nextTuple();
            offered += rt.offer(Packet::fromTuple(t), t) ? 1 : 0;
        }
        rt.drain();
    }

    EXPECT_GT(rt.snapshot().upcallsEnqueued, 0u);
    EXPECT_GT(rt.snapshot().revalidator.installs, 0u);
    EXPECT_EQ(rt.snapshot().revalidator.unresolved, 0u);
    EXPECT_EQ(rt.snapshot().revalidator.installFailures, 0u);
    // Later rounds must have classified against the installed entries.
    EXPECT_GT(rt.snapshot().matched, 0u);

    // Phase 2: traffic stops; the background sweeper must age the now
    // idle flows out on its own (bounded wait, sweeps every 200us).
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (rt.snapshot().revalidator.agedFlows == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GT(rt.snapshot().revalidator.agedFlows, 0u);

    rt.drain();
    rt.stop();
    const RuntimeSnapshot fin = rt.snapshot();
    EXPECT_EQ(fin.processed, fin.enqueued);
    EXPECT_EQ(fin.enqueued, offered);
    EXPECT_GT(fin.revalidator.sweeps, 0u);
    EXPECT_EQ(fin.upcallRingDepth, 0u);
    // Aged flows really left the tables: a fresh lookup of the flow
    // set misses (post-join, single-threaded again).
    EXPECT_GT(fin.revalidator.agedFlows, 0u);
}

/**
 * The upcall ring never blocks a worker: with a tiny ring and the
 * revalidator wedged behind a huge sweep interval, overflow must show
 * up as counted drops while every packet still completes.
 */
TEST(Runtime, DecoupledUpcallOverflowDropsAreCounted)
{
    RuleSet of;
    FlowRule fallback;
    fallback.mask = FlowMask{};
    fallback.priority = 1;
    fallback.action = Action{ActionKind::Forward, 3};
    of.push_back(fallback);

    RuntimeConfig cfg = smallConfig(1);
    cfg.decoupled = true;
    cfg.openflowRules = &of;
    cfg.warmTables = false;
    cfg.shard.vswitch.tupleConfig.tupleCapacity = 8192;
    cfg.revalidator.ringCapacity = 4;
    cfg.revalidator.drainBatch = 1;
    const RuleSet empty;
    Runtime rt(cfg, empty);

    // Fill the upcall ring before the revalidator runs: with no
    // consumer, distinct-flow misses past the capacity must drop.
    Workload wl(2000);
    TrafficGenerator gen(wl.traffic);
    rt.worker(0).start();
    std::uint64_t offered = 0;
    for (const FiveTuple &t : gen.flows())
        offered += rt.offer(Packet::fromTuple(t), t) ? 1 : 0;
    // Not rt.drain(): that also waits for the upcall ring to empty,
    // and this test deliberately never runs the consumer.
    while (rt.snapshot().processed < offered)
        std::this_thread::yield();

    const RuntimeSnapshot s = rt.snapshot();
    EXPECT_EQ(s.processed, offered);
    EXPECT_GT(s.upcallDrops, 0u);
    EXPECT_LE(s.upcallsEnqueued + s.promotesEnqueued,
              offered); // enqueues bounded by traffic, drops excluded

    rt.stop();
}

TEST(Runtime, SymmetricRssKeepsConnectionsOnOneShard)
{
    Workload wl;
    RuntimeConfig cfg = smallConfig(4);
    Runtime rt(cfg, wl.rules);

    TrafficGenerator gen(wl.traffic);
    for (int i = 0; i < 500; ++i) {
        const FiveTuple t = gen.nextTuple();
        FiveTuple r = t;
        std::swap(r.srcIp, r.dstIp);
        std::swap(r.srcPort, r.dstPort);
        ASSERT_EQ(rt.dispatcher().shardFor(t),
                  rt.dispatcher().shardFor(r));
    }
}
