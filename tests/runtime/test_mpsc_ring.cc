#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/mpsc_ring.hh"

using namespace halo;

TEST(MpscRing, FifoOrderSingleThread)
{
    MpscRing<int> ring(8);
    EXPECT_TRUE(ring.empty());
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(99)); // full: drop, never block
    EXPECT_EQ(ring.size(), 8u);

    int v = -1;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(ring.tryPop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(ring.tryPop(v));
    EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo)
{
    MpscRing<int> ring(5); // rounds to 8
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(8));
}

TEST(MpscRing, SlotsFreedByPopBecomeReusable)
{
    MpscRing<int> ring(4);
    int v = 0;
    // Cycle through the ring several times its capacity.
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 4; ++i)
            ASSERT_TRUE(ring.tryPush(round * 4 + i));
        for (int i = 0; i < 4; ++i) {
            ASSERT_TRUE(ring.tryPop(v));
            EXPECT_EQ(v, round * 4 + i);
        }
    }
}

TEST(MpscRing, PopBatchDrainsUpToMax)
{
    MpscRing<int> ring(16);
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(ring.tryPush(i));
    int buf[16];
    EXPECT_EQ(ring.popBatch(buf, 4), 4u);
    EXPECT_EQ(buf[0], 0);
    EXPECT_EQ(buf[3], 3);
    EXPECT_EQ(ring.popBatch(buf, 16), 6u);
    EXPECT_EQ(buf[5], 9);
    EXPECT_EQ(ring.popBatch(buf, 16), 0u);
}

/**
 * The decoupled runtime's actual topology: several producer threads
 * (workers) race tryPush against one consumer (the revalidator). Every
 * pushed item must be delivered exactly once; overflow must come back
 * as a failed push, never a lost or duplicated item. Runs under TSan
 * in CI.
 */
TEST(MpscRing, MultiProducerSingleConsumerDeliversExactlyOnce)
{
    constexpr unsigned producers = 4;
    constexpr std::uint64_t perProducer = 20000;
    MpscRing<std::uint64_t> ring(1024);

    std::vector<std::uint64_t> pushed(producers, 0);
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (unsigned p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            for (std::uint64_t i = 0; i < perProducer; ++i) {
                // Tag items with their producer in the high bits.
                const std::uint64_t item =
                    (std::uint64_t(p) << 32) | i;
                if (ring.tryPush(item))
                    ++pushed[p];
                else
                    std::this_thread::yield();
            }
        });
    }

    // Consumer: drain until all producers are done and the ring is
    // empty. Per producer, items must arrive in push order (each
    // producer's sequence numbers strictly increase).
    std::vector<std::uint64_t> received(producers, 0);
    std::vector<std::int64_t> lastSeq(producers, -1);
    bool producersDone = false;
    while (true) {
        std::uint64_t item = 0;
        if (ring.tryPop(item)) {
            const unsigned p = static_cast<unsigned>(item >> 32);
            const std::int64_t seq =
                static_cast<std::int64_t>(item & 0xffffffffu);
            ASSERT_LT(p, producers);
            ASSERT_GT(seq, lastSeq[p]);
            lastSeq[p] = seq;
            ++received[p];
            continue;
        }
        if (producersDone)
            break;
        producersDone = true;
        for (auto &t : threads)
            t.join();
        // One more drain pass after the last join.
    }

    for (unsigned p = 0; p < producers; ++p)
        EXPECT_EQ(received[p], pushed[p]) << "producer " << p;
}
