/**
 * @file
 * Tests for the OpenFlow slow-path layer and the upcall/install flow
 * (paper Fig. 2a's third layer).
 */

#include <gtest/gtest.h>

#include "flow/ruleset.hh"
#include "vswitch/vswitch.hh"

namespace halo {
namespace {

struct OfRig
{
    SimMemory mem{1ull << 30};
    MemoryHierarchy hier;
    HaloSystem halo{mem, hier};
    CoreModel core{hier, 0};
    TrafficGenerator gen;
    RuleSet openflowRules;

    OfRig()
        : gen(TrafficConfig{500, 0.0, 0.5, 0x0f0f}),
          openflowRules(deriveRules(gen.flows(), canonicalMasks(4), 0,
                                    0x11))
    {
    }

    VirtualSwitch
    makeSwitch(LookupMode mode)
    {
        VSwitchConfig cfg;
        cfg.mode = mode;
        cfg.useEmc = false;
        cfg.useOpenflowLayer = true;
        cfg.tupleConfig.tupleCapacity = 2048;
        VirtualSwitch vs(mem, hier, core, &halo, cfg);
        // MegaFlow starts EMPTY: every first packet of a flow upcalls.
        vs.installOpenflowRules(openflowRules);
        vs.warmTables();
        return vs;
    }
};

TEST(OpenflowLayer, UpcallResolvesMegaflowMiss)
{
    OfRig rig;
    auto vs = rig.makeSwitch(LookupMode::Software);
    EXPECT_EQ(vs.tupleSpace().ruleCount(), 0u);

    const FiveTuple &flow = rig.gen.flows()[0];
    const PacketResult first = vs.classifyTuple(flow);
    EXPECT_TRUE(first.matched);
    EXPECT_EQ(vs.upcalls(), 1u);
    // The upcall installed a megaflow entry.
    EXPECT_GE(vs.tupleSpace().ruleCount(), 1u);

    // Second packet of the flow takes the fast path: no new upcall.
    const PacketResult second = vs.classifyTuple(flow);
    EXPECT_TRUE(second.matched);
    EXPECT_EQ(vs.upcalls(), 1u);
    EXPECT_EQ(second.action, first.action);
}

TEST(OpenflowLayer, FastPathCheaperThanUpcall)
{
    OfRig rig;
    auto vs = rig.makeSwitch(LookupMode::Software);
    const FiveTuple &flow = rig.gen.flows()[1];
    const PacketResult slow = vs.classifyTuple(flow);
    const PacketResult fast = vs.classifyTuple(flow);
    EXPECT_LT(fast.megaflowCycles, slow.megaflowCycles);
}

TEST(OpenflowLayer, UpcallsWorkUnderHaloModes)
{
    OfRig rig;
    auto vs = rig.makeSwitch(LookupMode::HaloNonBlocking);
    unsigned matched = 0;
    for (int i = 0; i < 50; ++i)
        matched += vs.classifyTuple(rig.gen.flows()[i]).matched ? 1 : 0;
    EXPECT_EQ(matched, 50u);
    EXPECT_EQ(vs.upcalls(), 50u);
    // Replays hit the (HALO-searched) megaflow layer.
    const std::uint64_t upcalls_before = vs.upcalls();
    for (int i = 0; i < 50; ++i)
        vs.classifyTuple(rig.gen.flows()[i]);
    EXPECT_EQ(vs.upcalls(), upcalls_before);
}

TEST(OpenflowLayer, HighestPriorityRuleWinsUpcall)
{
    OfRig rig;
    auto vs = rig.makeSwitch(LookupMode::Software);
    // The best-priority OpenFlow match must be what gets installed.
    const FiveTuple &flow = rig.gen.flows()[2];
    const auto best = [&]() -> Action {
        const auto key = flow.toKey();
        std::uint16_t best_prio = 0;
        Action action;
        for (const FlowRule &r : rig.openflowRules) {
            if (r.matches(key) && r.priority >= best_prio) {
                best_prio = r.priority;
                action = r.action;
            }
        }
        return action;
    }();
    const PacketResult r = vs.classifyTuple(flow);
    ASSERT_TRUE(r.matched);
    EXPECT_EQ(r.action, best);
}

TEST(OpenflowLayer, TrueMissStaysUnmatched)
{
    OfRig rig;
    auto vs = rig.makeSwitch(LookupMode::Software);
    FiveTuple alien;
    alien.srcIp = 0xdead0000;
    alien.dstIp = 0xbeef0000;
    const PacketResult r = vs.classifyTuple(alien);
    EXPECT_FALSE(r.matched);
    EXPECT_EQ(vs.upcalls(), 0u);
}

} // namespace
} // namespace halo
