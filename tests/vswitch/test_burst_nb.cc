/**
 * @file
 * Tests for the DPDK-style burst LOOKUP_NB classification path.
 */

#include <gtest/gtest.h>

#include "flow/ruleset.hh"
#include "vswitch/vswitch.hh"

namespace halo {
namespace {

struct BurstRig
{
    SimMemory mem{1ull << 30};
    MemoryHierarchy hier;
    HaloSystem halo{mem, hier};
    CoreModel core{hier, 0};
    TrafficGenerator gen{TrafficConfig{3000, 0.0, 0.5, 0xbbb}};
    RuleSet rules;

    BurstRig()
        : rules(deriveRules(gen.flows(), canonicalMasks(6), 0, 0x21))
    {
    }

    VirtualSwitch
    makeSwitch()
    {
        VSwitchConfig cfg;
        cfg.mode = LookupMode::HaloNonBlocking;
        cfg.useEmc = false;
        cfg.tupleConfig.tupleCapacity =
            nextPowerOfTwo(maxRulesPerMask(rules) + 64);
        VirtualSwitch vs(mem, hier, core, &halo, cfg);
        vs.installRules(rules);
        vs.warmTables();
        return vs;
    }
};

TEST(BurstNb, MatchesPerPacketClassification)
{
    BurstRig rig;
    auto vs = rig.makeSwitch();
    auto reference = rig.makeSwitch();

    std::vector<FiveTuple> batch;
    for (int i = 0; i < 16; ++i)
        batch.push_back(rig.gen.flows()[i * 7]);

    const auto burst = vs.classifyBurstNB(batch);
    ASSERT_EQ(burst.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const PacketResult single = reference.classifyTuple(batch[i]);
        ASSERT_EQ(burst[i].matched, single.matched) << "packet " << i;
        if (single.matched)
            EXPECT_EQ(burst[i].action, single.action) << "packet " << i;
    }
}

TEST(BurstNb, AmortizesCyclesAcrossPackets)
{
    BurstRig rig;
    auto vs = rig.makeSwitch();

    // Per-packet NB first.
    Cycles begin = vs.now();
    for (int i = 0; i < 64; ++i)
        vs.classifyTuple(rig.gen.flows()[i]);
    const double single_cpp =
        static_cast<double>(vs.now() - begin) / 64.0;

    // Then 16-packet bursts of the same flows.
    std::vector<FiveTuple> batch(16);
    begin = vs.now();
    for (int i = 0; i < 64; i += 16) {
        for (int b = 0; b < 16; ++b)
            batch[b] = rig.gen.flows()[i + b];
        vs.classifyBurstNB(batch);
    }
    const double burst_cpp =
        static_cast<double>(vs.now() - begin) / 64.0;
    EXPECT_LT(burst_cpp, single_cpp);
}

TEST(BurstNb, EmptyAndOversizedBatches)
{
    BurstRig rig;
    auto vs = rig.makeSwitch();
    auto reference = rig.makeSwitch();
    EXPECT_TRUE(vs.classifyBurstNB({}).empty());
    // A batch exceeding the key-staging ring is split into chunks that
    // fit, never silently corrupting in-flight keys.
    const std::size_t huge_n = 1024 / vs.tupleSpace().numTuples() + 3;
    std::vector<FiveTuple> huge(huge_n);
    for (std::size_t i = 0; i < huge_n; ++i)
        huge[i] = rig.gen.flows()[i];
    const auto burst = vs.classifyBurstNB(huge);
    ASSERT_EQ(burst.size(), huge_n);
    for (std::size_t i = 0; i < huge_n; ++i) {
        const PacketResult single = reference.classifyTuple(huge[i]);
        EXPECT_EQ(burst[i].matched, single.matched) << "packet " << i;
    }
}

TEST(BurstNb, MissesReportUnmatched)
{
    BurstRig rig;
    auto vs = rig.makeSwitch();
    std::vector<FiveTuple> aliens(8);
    for (int i = 0; i < 8; ++i) {
        aliens[i].srcIp = 0xc5000000 + static_cast<std::uint32_t>(i);
        aliens[i].dstIp = 0xc6000000 + static_cast<std::uint32_t>(i);
    }
    for (const PacketResult &r : vs.classifyBurstNB(aliens))
        EXPECT_FALSE(r.matched);
}

} // namespace
} // namespace halo
