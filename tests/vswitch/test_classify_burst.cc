/**
 * @file
 * Equivalence tests for the software-mode burst classification path:
 * classifyBurst / processBurst must produce byte-identical
 * PacketResults — cycles included — to the scalar per-packet path, for
 * every burst size and for hit / miss / upcall / duplicate mixes.
 *
 * Twin-rig structure: the burst switch and the scalar reference each
 * own a complete simulated machine built with identical seeds, so any
 * divergence is the burst pipeline's fault, never shared-state
 * interference.
 */

#include <gtest/gtest.h>

#include <memory>

#include "flow/ruleset.hh"
#include "vswitch/vswitch.hh"

namespace halo {
namespace {

struct BurstRig
{
    SimMemory mem{1ull << 30};
    MemoryHierarchy hier;
    CoreModel core{hier, 0};
    TrafficGenerator gen;
    RuleSet rules;
    std::unique_ptr<VirtualSwitch> vs;

    explicit BurstRig(unsigned burst_lanes, bool use_emc = true,
                      bool openflow_layer = false)
        : gen(TrafficConfig{600, 0.0, 0.5, 0x5eed}),
          rules(deriveRules(gen.flows(), canonicalMasks(6), 0, 0x21))
    {
        VSwitchConfig cfg;
        cfg.mode = LookupMode::Software;
        cfg.useEmc = use_emc;
        cfg.useOpenflowLayer = openflow_layer;
        cfg.burstLanes = burst_lanes;
        cfg.tupleConfig.tupleCapacity =
            nextPowerOfTwo(maxRulesPerMask(rules) + 64);
        vs = std::make_unique<VirtualSwitch>(mem, hier, core, nullptr,
                                             cfg);
        if (openflow_layer) {
            // MegaFlow starts empty: every new flow upcalls and
            // installs mid-burst.
            vs->installOpenflowRules(rules);
        } else {
            vs->installRules(rules);
        }
        vs->warmTables();
    }
};

void
expectIdentical(const PacketResult &burst, const PacketResult &scalar,
                std::size_t i)
{
    EXPECT_EQ(burst.matched, scalar.matched) << "packet " << i;
    EXPECT_EQ(burst.emcHit, scalar.emcHit) << "packet " << i;
    EXPECT_EQ(burst.action, scalar.action) << "packet " << i;
    EXPECT_EQ(burst.tuplesSearched, scalar.tuplesSearched)
        << "packet " << i;
    EXPECT_EQ(burst.total, scalar.total) << "packet " << i;
    EXPECT_EQ(burst.packetIo, scalar.packetIo) << "packet " << i;
    EXPECT_EQ(burst.preprocess, scalar.preprocess) << "packet " << i;
    EXPECT_EQ(burst.emcCycles, scalar.emcCycles) << "packet " << i;
    EXPECT_EQ(burst.megaflowCycles, scalar.megaflowCycles)
        << "packet " << i;
    EXPECT_EQ(burst.otherCycles, scalar.otherCycles) << "packet " << i;
    EXPECT_EQ(burst.instructions, scalar.instructions) << "packet " << i;
}

/** Hit/miss/duplicate traffic: known flows, repeats (EMC hits and
 *  in-burst duplicates — the insert-conflict fallback), and aliens
 *  that miss every layer. */
std::vector<FiveTuple>
mixedBatch(const TrafficGenerator &gen, std::size_t count)
{
    std::vector<FiveTuple> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (i % 7 == 3) {
            FiveTuple alien;
            alien.srcIp = 0xc5000000 + static_cast<std::uint32_t>(i);
            alien.dstIp = 0xc6000000 + static_cast<std::uint32_t>(i);
            alien.srcPort = 7;
            alien.dstPort = 9;
            batch.push_back(alien);
        } else if (i % 5 == 0 && i > 0) {
            batch.push_back(batch[i - 1]); // in-burst duplicate
        } else {
            batch.push_back(gen.flows()[(i * 13) % gen.flows().size()]);
        }
    }
    return batch;
}

TEST(ClassifyBurst, ByteIdenticalAcrossBurstSizes)
{
    for (const unsigned lanes : {1u, 2u, 3u, 5u, 8u, 16u, 31u, 32u}) {
        BurstRig burst_rig(lanes);
        BurstRig scalar_rig(lanes);
        const auto batch = mixedBatch(burst_rig.gen, 100);

        std::vector<PacketResult> burst(batch.size());
        burst_rig.vs->classifyBurst(batch, burst);

        for (std::size_t i = 0; i < batch.size(); ++i) {
            const PacketResult scalar =
                scalar_rig.vs->classifyTuple(batch[i]);
            expectIdentical(burst[i], scalar, i);
        }
        EXPECT_EQ(burst_rig.vs->now(), scalar_rig.vs->now())
            << "burst " << lanes;
        EXPECT_EQ(burst_rig.vs->totals().total,
                  scalar_rig.vs->totals().total)
            << "burst " << lanes;
    }
}

TEST(ClassifyBurst, ByteIdenticalWithoutEmc)
{
    BurstRig burst_rig(16, /*use_emc=*/false);
    BurstRig scalar_rig(16, /*use_emc=*/false);
    const auto batch = mixedBatch(burst_rig.gen, 64);

    std::vector<PacketResult> burst(batch.size());
    burst_rig.vs->classifyBurst(batch, burst);
    for (std::size_t i = 0; i < batch.size(); ++i)
        expectIdentical(burst[i], scalar_rig.vs->classifyTuple(batch[i]),
                        i);
    EXPECT_EQ(burst_rig.vs->now(), scalar_rig.vs->now());
}

TEST(ClassifyBurst, ByteIdenticalThroughUpcalls)
{
    // OpenFlow layer on, MegaFlow empty: the first packet of every
    // flow upcalls and installs a rule, invalidating the remaining
    // lanes' prepass (the tssDirty fallback must keep results exact).
    BurstRig burst_rig(16, true, /*openflow_layer=*/true);
    BurstRig scalar_rig(16, true, /*openflow_layer=*/true);
    const auto batch = mixedBatch(burst_rig.gen, 80);

    std::vector<PacketResult> burst(batch.size());
    burst_rig.vs->classifyBurst(batch, burst);
    for (std::size_t i = 0; i < batch.size(); ++i)
        expectIdentical(burst[i], scalar_rig.vs->classifyTuple(batch[i]),
                        i);
    EXPECT_EQ(burst_rig.vs->upcalls(), scalar_rig.vs->upcalls());
    EXPECT_EQ(burst_rig.vs->now(), scalar_rig.vs->now());
}

TEST(ClassifyBurst, StateCarriesAcrossBursts)
{
    // Several consecutive bursts over overlapping flows: EMC contents,
    // datapath clock and totals must track the scalar switch exactly.
    BurstRig burst_rig(8);
    BurstRig scalar_rig(8);
    for (int round = 0; round < 4; ++round) {
        std::vector<FiveTuple> batch;
        for (int i = 0; i < 40; ++i)
            batch.push_back(
                burst_rig.gen.flows()[(round * 17 + i * 3) % 600]);
        std::vector<PacketResult> burst(batch.size());
        burst_rig.vs->classifyBurst(batch, burst);
        for (std::size_t i = 0; i < batch.size(); ++i)
            expectIdentical(burst[i],
                            scalar_rig.vs->classifyTuple(batch[i]), i);
    }
    EXPECT_EQ(burst_rig.vs->now(), scalar_rig.vs->now());
    EXPECT_EQ(burst_rig.vs->totals().emcHits,
              scalar_rig.vs->totals().emcHits);
}

TEST(ProcessBurst, ByteIdenticalWithMalformedPackets)
{
    BurstRig burst_rig(16);
    BurstRig scalar_rig(16);

    std::vector<Packet> batch;
    for (int i = 0; i < 70; ++i) {
        if (i % 11 == 5) {
            // Runt frame: fails header parsing, dropped in place.
            Packet runt;
            runt.bytes().assign(8, 0xee);
            batch.push_back(std::move(runt));
        } else {
            batch.push_back(
                Packet::fromTuple(burst_rig.gen.flows()[(i * 7) % 600]));
        }
    }

    std::vector<PacketResult> burst(batch.size());
    burst_rig.vs->processBurst(batch, burst);
    for (std::size_t i = 0; i < batch.size(); ++i)
        expectIdentical(burst[i], scalar_rig.vs->processPacket(batch[i]),
                        i);
    EXPECT_EQ(burst_rig.vs->now(), scalar_rig.vs->now());
    EXPECT_EQ(burst_rig.vs->totals().packets,
              scalar_rig.vs->totals().packets);
}

TEST(ClassifyBurst, NbModeMatchesClassifyBurstNB)
{
    struct NbRig
    {
        SimMemory mem{1ull << 30};
        MemoryHierarchy hier;
        HaloSystem halo{mem, hier};
        CoreModel core{hier, 0};
        TrafficGenerator gen{TrafficConfig{600, 0.0, 0.5, 0x5eed}};
        RuleSet rules;
        std::unique_ptr<VirtualSwitch> vs;

        NbRig()
            : rules(deriveRules(gen.flows(), canonicalMasks(6), 0, 0x21))
        {
            VSwitchConfig cfg;
            cfg.mode = LookupMode::HaloNonBlocking;
            cfg.useEmc = false;
            cfg.tupleConfig.tupleCapacity =
                nextPowerOfTwo(maxRulesPerMask(rules) + 64);
            vs = std::make_unique<VirtualSwitch>(mem, hier, core, &halo,
                                                 cfg);
            vs->installRules(rules);
            vs->warmTables();
        }
    };

    NbRig span_rig;
    NbRig vec_rig;
    std::vector<FiveTuple> batch;
    for (int i = 0; i < 24; ++i)
        batch.push_back(span_rig.gen.flows()[i * 5]);

    std::vector<PacketResult> via_span(batch.size());
    span_rig.vs->classifyBurst(batch, via_span);
    const auto via_vec = vec_rig.vs->classifyBurstNB(batch);
    ASSERT_EQ(via_vec.size(), via_span.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        expectIdentical(via_span[i], via_vec[i], i);
}

} // namespace
} // namespace halo
