/**
 * @file
 * Unit and integration tests for the virtual-switch datapath.
 */

#include <gtest/gtest.h>

#include "flow/ruleset.hh"
#include "vswitch/vswitch.hh"

namespace halo {
namespace {

struct SwitchRig
{
    SimMemory mem{1ull << 30};
    MemoryHierarchy hier;
    HaloSystem halo{mem, hier};
    CoreModel core{hier, 0};
    TrafficGenerator gen;
    RuleSet rules;

    explicit SwitchRig(std::uint64_t flows = 2000,
                       TrafficScenario scenario =
                           TrafficScenario::ManyFlows)
        : gen(TrafficGenerator::scenarioConfig(scenario, flows)),
          rules(scenarioRules(scenario, gen.flows(), 99))
    {
    }

    VirtualSwitch
    makeSwitch(LookupMode mode, bool use_emc = true)
    {
        VSwitchConfig cfg;
        cfg.mode = mode;
        cfg.useEmc = use_emc;
        cfg.tupleConfig.tupleCapacity =
            nextPowerOfTwo(gen.flows().size() + 16);
        VirtualSwitch vs(mem, hier, core, &halo, cfg);
        vs.installRules(rules);
        vs.warmTables();
        return vs;
    }
};

TEST(VSwitch, EveryPacketMatchesInSoftwareMode)
{
    SwitchRig rig;
    auto vs = rig.makeSwitch(LookupMode::Software);
    for (int i = 0; i < 200; ++i) {
        const PacketResult r = vs.processPacket(rig.gen.nextPacket());
        EXPECT_TRUE(r.matched);
        EXPECT_GT(r.total, 0u);
    }
    EXPECT_EQ(vs.totals().matches, 200u);
}

TEST(VSwitch, StageBreakdownSumsToTotal)
{
    SwitchRig rig;
    auto vs = rig.makeSwitch(LookupMode::Software);
    const PacketResult r = vs.processPacket(rig.gen.nextPacket());
    EXPECT_EQ(r.total, r.packetIo + r.preprocess + r.emcCycles +
                           r.megaflowCycles + r.otherCycles);
}

TEST(VSwitch, EmcHitsGrowWithRepeatedFlows)
{
    SwitchRig rig(100, TrafficScenario::SmallFlowCount);
    auto vs = rig.makeSwitch(LookupMode::Software);
    for (int i = 0; i < 1000; ++i)
        vs.processPacket(rig.gen.nextPacket());
    // 100 flows into an 8K-entry EMC: the steady state is hit-dominated.
    EXPECT_GT(static_cast<double>(vs.totals().emcHits) /
                  static_cast<double>(vs.totals().packets),
              0.7);
}

TEST(VSwitch, EmcHitIsCheaperThanMegaflowWalk)
{
    SwitchRig rig(100, TrafficScenario::SmallFlowCount);
    auto vs = rig.makeSwitch(LookupMode::Software);
    Cycles hit_cost = 0, miss_cost = 0;
    unsigned hits = 0, misses = 0;
    for (int i = 0; i < 600; ++i) {
        const PacketResult r = vs.processPacket(rig.gen.nextPacket());
        if (r.emcHit) {
            hit_cost += r.emcCycles + r.megaflowCycles;
            ++hits;
        } else {
            miss_cost += r.emcCycles + r.megaflowCycles;
            ++misses;
        }
    }
    ASSERT_GT(hits, 0u);
    ASSERT_GT(misses, 0u);
    EXPECT_LT(hit_cost / hits, miss_cost / misses);
}

TEST(VSwitch, AllModesAgreeOnClassification)
{
    SwitchRig rig(500);
    auto sw = rig.makeSwitch(LookupMode::Software, false);
    auto hb = rig.makeSwitch(LookupMode::HaloBlocking, false);
    auto hnb = rig.makeSwitch(LookupMode::HaloNonBlocking, false);
    for (int i = 0; i < 100; ++i) {
        const FiveTuple &t = rig.gen.nextTuple();
        const PacketResult a = sw.classifyTuple(t);
        const PacketResult b = hb.classifyTuple(t);
        const PacketResult c = hnb.classifyTuple(t);
        ASSERT_EQ(a.matched, b.matched);
        ASSERT_EQ(a.matched, c.matched);
        if (a.matched) {
            EXPECT_EQ(a.action, b.action);
            EXPECT_EQ(a.action, c.action);
        }
    }
}

TEST(VSwitch, HaloNonBlockingBeatsSoftwareOnLongTupleWalks)
{
    // The NB win appears when packets walk many tuples (Fig. 11): use a
    // 12-mask rule set and probe tuples that match nothing, so the
    // software walk visits every tuple while NB fans out in parallel.
    SwitchRig rig(1200, TrafficScenario::ManyFlows);
    rig.rules = deriveRules(rig.gen.flows(), canonicalMasks(12), 0, 5);
    auto sw = rig.makeSwitch(LookupMode::Software, false);
    auto hnb = rig.makeSwitch(LookupMode::HaloNonBlocking, false);
    Cycles sw_cycles = 0, nb_cycles = 0;
    for (int i = 0; i < 200; ++i) {
        FiveTuple alien;
        alien.srcIp = 0xc0000000 + static_cast<std::uint32_t>(i);
        alien.dstIp = 0xc1000000 + static_cast<std::uint32_t>(i * 3);
        alien.srcPort = static_cast<std::uint16_t>(i + 1);
        alien.dstPort = static_cast<std::uint16_t>(i + 2);
        const PacketResult a = sw.classifyTuple(alien);
        const PacketResult b = hnb.classifyTuple(alien);
        EXPECT_FALSE(a.matched);
        EXPECT_FALSE(b.matched);
        sw_cycles += a.megaflowCycles;
        nb_cycles += b.megaflowCycles;
    }
    // Full 12-tuple walks: the fan-out should win by a wide margin.
    EXPECT_LT(2 * nb_cycles, sw_cycles);
}

TEST(VSwitch, HybridModeTracksFlowCount)
{
    SwitchRig rig(8, TrafficScenario::SmallFlowCount);
    auto vs = rig.makeSwitch(LookupMode::Hybrid, false);
    // Few flows: after a window the hybrid controller must pick
    // software.
    for (int i = 0; i < 1200; ++i)
        vs.classifyTuple(rig.gen.nextTuple());
    EXPECT_EQ(vs.effectiveMode(), LookupMode::Software);
}

TEST(VSwitch, HybridSwitchesToHaloUnderManyFlows)
{
    SwitchRig rig(20000, TrafficScenario::ManyFlows);
    VSwitchConfig cfg;
    cfg.mode = LookupMode::Hybrid;
    cfg.useEmc = false;
    cfg.tupleConfig.tupleCapacity = 32768;
    VirtualSwitch vs(rig.mem, rig.hier, rig.core, &rig.halo, cfg);
    vs.installRules(rig.rules);
    // Force the controller into Software first, then flood flows.
    for (int i = 0; i < 1200; ++i)
        vs.classifyTuple(rig.gen.flows()[i % 4]);
    EXPECT_EQ(vs.effectiveMode(), LookupMode::Software);
    for (int i = 0; i < 2000; ++i)
        vs.classifyTuple(rig.gen.nextTuple());
    EXPECT_EQ(vs.effectiveMode(), LookupMode::HaloNonBlocking);
}

TEST(VSwitch, MalformedPacketIsDroppedEarly)
{
    SwitchRig rig;
    auto vs = rig.makeSwitch(LookupMode::Software);
    Packet runt;
    runt.bytes().assign(5, 0);
    const PacketResult r = vs.processPacket(runt);
    EXPECT_FALSE(r.matched);
}

TEST(VSwitch, UnmatchedTupleReportsNoMatch)
{
    SwitchRig rig(100, TrafficScenario::SmallFlowCount);
    auto vs = rig.makeSwitch(LookupMode::Software, false);
    FiveTuple alien;
    alien.srcIp = 0xc0a80101; // not in 10/8 population
    alien.dstIp = 0xc0a80202;
    alien.srcPort = 1;
    alien.dstPort = 2;
    const PacketResult r = vs.classifyTuple(alien);
    EXPECT_FALSE(r.matched);
    EXPECT_EQ(r.tuplesSearched, vs.tupleSpace().numTuples());
}

TEST(VSwitch, CyclesPerPacketInPaperRange)
{
    // Fig. 3 reports 340-993 cycles/packet across its five configs;
    // our software datapath should land in that ballpark.
    SwitchRig rig(10000, TrafficScenario::ManyFlows);
    auto vs = rig.makeSwitch(LookupMode::Software);
    for (int i = 0; i < 500; ++i)
        vs.processPacket(rig.gen.nextPacket());
    const double cpp = vs.totals().cyclesPerPacket();
    EXPECT_GT(cpp, 250.0);
    EXPECT_LT(cpp, 1400.0);
}

} // namespace
} // namespace halo
