/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace halo {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameCycleFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(5, [&] { ++fired; });
    q.schedule(15, [&] { ++fired; });
    q.run(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int chain = 0;
    std::function<void()> step = [&] {
        if (++chain < 4)
            q.scheduleIn(10, step);
    };
    q.schedule(0, step);
    q.run();
    EXPECT_EQ(chain, 4);
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    int fired = 0;
    const auto ticket = q.schedule(5, [&] { ++fired; });
    q.schedule(6, [&] { ++fired; });
    q.cancel(ticket);
    q.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, StepExecutesOneEvent)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] { ++fired; });
    q.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_THROW(q.schedule(5, [] {}), PanicError);
}

TEST(EventQueue, AdvanceToMovesClock)
{
    EventQueue q;
    q.advanceTo(100);
    EXPECT_EQ(q.now(), 100u);
    EXPECT_THROW(q.advanceTo(50), PanicError);
}

} // namespace
} // namespace halo
