/**
 * @file
 * Unit tests for the deterministic PRNGs and the Zipf sampler.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/random.hh"

namespace halo {
namespace {

TEST(SplitMix64, DeterministicForSeed)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge)
{
    SplitMix64 a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += a.next() != b.next() ? 1 : 0;
    EXPECT_GT(differing, 60);
}

TEST(Xoshiro256, DeterministicForSeed)
{
    Xoshiro256 a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BoundedStaysInRange)
{
    Xoshiro256 rng(123);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Xoshiro256, BoundedCoversRange)
{
    Xoshiro256 rng(99);
    std::map<std::uint64_t, int> seen;
    for (int i = 0; i < 5000; ++i)
        ++seen[rng.nextBounded(8)];
    EXPECT_EQ(seen.size(), 8u);
    // Roughly uniform: every bucket within 3x of the mean.
    for (const auto &kv : seen) {
        EXPECT_GT(kv.second, 5000 / 8 / 3);
        EXPECT_LT(kv.second, 5000 / 8 * 3);
    }
}

TEST(Xoshiro256, DoubleInUnitInterval)
{
    Xoshiro256 rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Zipf, UniformWhenSkewZero)
{
    Xoshiro256 rng(11);
    ZipfDistribution zipf(10, 0.0);
    std::map<std::size_t, int> counts;
    for (int i = 0; i < 20000; ++i)
        ++counts[zipf.sample(rng)];
    for (const auto &kv : counts) {
        EXPECT_GT(kv.second, 1000);
        EXPECT_LT(kv.second, 4000);
    }
}

TEST(Zipf, SkewFavorsLowRanks)
{
    Xoshiro256 rng(13);
    ZipfDistribution zipf(1000, 0.99);
    std::uint64_t low = 0, high = 0;
    for (int i = 0; i < 20000; ++i) {
        const std::size_t rank = zipf.sample(rng);
        if (rank < 10)
            ++low;
        if (rank >= 500)
            ++high;
    }
    EXPECT_GT(low, high * 3);
}

TEST(Zipf, SampleInRange)
{
    Xoshiro256 rng(17);
    ZipfDistribution zipf(64, 1.2);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(zipf.sample(rng), 64u);
}

TEST(Zipf, RejectsEmptyPopulation)
{
    EXPECT_THROW(ZipfDistribution(0, 1.0), PanicError);
}

} // namespace
} // namespace halo
