/**
 * @file
 * Unit tests for the statistics framework and type helpers.
 */

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace halo {
namespace {

TEST(PublishedCounter, SingleWriterConcurrentReader)
{
    PublishedCounter c;
    constexpr std::uint64_t target = 200000;

    std::thread writer([&] {
        for (std::uint64_t i = 0; i < target; ++i)
            c.add(1);
    });

    // Reader sees an eventually-consistent monotonic value.
    std::uint64_t last = 0;
    while (last < target) {
        const std::uint64_t v = c.value();
        ASSERT_GE(v, last);
        ASSERT_LE(v, target);
        last = v;
        std::this_thread::yield();
    }
    writer.join();
    EXPECT_EQ(c.value(), target);
}

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(2.0);
    a.sample(6.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_EQ(a.samples(), 3u);
}

TEST(Average, EmptyIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(0.5);
    h.sample(9.5);
    h.sample(-1.0);
    h.sample(100.0);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, PercentileInterpolatesWithinBuckets)
{
    // 100 samples spread uniformly over [0, 10): percentiles track the
    // empirical quantiles to within half a bucket width.
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(i * 0.1);
    EXPECT_NEAR(h.percentile(0.5), 5.0, 0.5);
    EXPECT_NEAR(h.percentile(0.9), 9.0, 0.5);
    EXPECT_NEAR(h.percentile(0.1), 1.0, 0.5);
}

TEST(Histogram, PercentileSaturatesAtRangeEnds)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(-5.0);  // underflow: behaves as lo
    h.sample(5.0);
    h.sample(100.0); // overflow: behaves as hi
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
    EXPECT_NEAR(h.percentile(0.5), 5.5, 0.5);

    Histogram empty(2.0, 4.0, 4);
    EXPECT_DOUBLE_EQ(empty.percentile(0.5), 2.0); // empty returns lo
}

TEST(StatGroup, ForEachEnumeratesAll)
{
    StatGroup g("fe");
    g.counter("a") += 1;
    g.counter("b") += 2;
    g.average("m").sample(6.0);

    std::map<std::string, std::uint64_t> seen;
    g.forEachCounter([&](const std::string &name, const Counter &c) {
        seen[name] = c.value();
    });
    EXPECT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen["a"], 1u);
    EXPECT_EQ(seen["b"], 2u);

    unsigned averages = 0;
    g.forEachAverage([&](const std::string &name, const Average &a) {
        EXPECT_EQ(name, "m");
        EXPECT_DOUBLE_EQ(a.mean(), 6.0);
        ++averages;
    });
    EXPECT_EQ(averages, 1u);
}

TEST(StatGroup, RegisterAndRead)
{
    StatGroup g("test");
    ++g.counter("hits");
    g.counter("hits") += 2;
    EXPECT_EQ(g.counterValue("hits"), 3u);
    EXPECT_TRUE(g.hasCounter("hits"));
    EXPECT_FALSE(g.hasCounter("misses"));
    EXPECT_THROW(g.counterValue("misses"), PanicError);
}

TEST(StatGroup, DumpContainsEntries)
{
    StatGroup g("grp");
    g.counter("x") += 7;
    g.average("y").sample(3.0);
    const std::string dump = g.dump();
    EXPECT_NE(dump.find("grp.x 7"), std::string::npos);
    EXPECT_NE(dump.find("grp.y.mean 3"), std::string::npos);
}

TEST(StatGroup, ResetClearsAll)
{
    StatGroup g("r");
    g.counter("c") += 4;
    g.average("a").sample(1.0);
    g.reset();
    EXPECT_EQ(g.counterValue("c"), 0u);
    EXPECT_EQ(g.average("a").samples(), 0u);
}

TEST(Types, LineAlignment)
{
    EXPECT_EQ(lineAlign(0), 0u);
    EXPECT_EQ(lineAlign(63), 0u);
    EXPECT_EQ(lineAlign(64), 64u);
    EXPECT_EQ(lineAlign(130), 128u);
    EXPECT_TRUE(isLineAligned(128));
    EXPECT_FALSE(isLineAligned(129));
}

TEST(Types, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
    EXPECT_EQ(nextPowerOfTwo(0), 1u);
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(5), 8u);
    EXPECT_EQ(nextPowerOfTwo(4096), 4096u);
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(4096), 12u);
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
}

} // namespace
} // namespace halo
