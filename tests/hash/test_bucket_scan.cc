/**
 * @file
 * Oracle tests for the branchless bucket signature scan: the compiled
 * dispatch (AVX2 / SSE2 / scalar, whichever this build selected) must
 * agree with the scalar reference on every occupancy/signature pattern.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "hash/bucket_scan.hh"
#include "sim/random.hh"

namespace halo {
namespace {

/** Build a raw bucket line from 8 (sig, kvRef) pairs. */
std::array<std::uint8_t, cacheLineBytes>
makeLine(const std::array<BucketEntry, entriesPerBucket> &entries)
{
    std::array<std::uint8_t, cacheLineBytes> line{};
    for (unsigned way = 0; way < entriesPerBucket; ++way)
        std::memcpy(line.data() + way * bucketEntryBytes, &entries[way],
                    bucketEntryBytes);
    return line;
}

TEST(BucketScan, EmptyBucketMatchesNothing)
{
    const auto line = makeLine({});
    EXPECT_EQ(scanBucketSigs(line.data(), 0), 0u);
    EXPECT_EQ(scanBucketSigsScalar(line.data(), 0), 0u);
}

TEST(BucketScan, OccupiedEntriesMatchTheirSignature)
{
    std::array<BucketEntry, entriesPerBucket> entries{};
    entries[0] = {0xabcd1234, 1};
    entries[3] = {0xabcd1234, 7};
    entries[5] = {0x55555555, 9};
    // An EMPTY way whose stale signature matches must not count.
    entries[6] = {0xabcd1234, 0};
    const auto line = makeLine(entries);
    EXPECT_EQ(scanBucketSigs(line.data(), 0xabcd1234), 0b0001001u);
    EXPECT_EQ(scanBucketSigs(line.data(), 0x55555555), 0b0100000u);
    EXPECT_EQ(scanBucketSigs(line.data(), 0xdeadbeef), 0u);
}

TEST(BucketScan, DispatchAgreesWithScalarOracleExhaustively)
{
    // Randomized occupancy and signature collisions, including the
    // zero signature (legal for a key) against empty ways.
    Xoshiro256 rng(0xb5c4e7);
    const std::uint32_t sigs[4] = {0, 0x1111, 0xffffffff, 0x8000001u};
    for (int round = 0; round < 2000; ++round) {
        std::array<BucketEntry, entriesPerBucket> entries{};
        for (unsigned way = 0; way < entriesPerBucket; ++way) {
            entries[way].sig = sigs[rng.next() % 4];
            entries[way].kvRef =
                (rng.next() % 3) ? static_cast<std::uint32_t>(
                                       rng.next() % 1000)
                                 : 0;
        }
        const auto line = makeLine(entries);
        for (const std::uint32_t sig : sigs) {
            EXPECT_EQ(scanBucketSigs(line.data(), sig),
                      scanBucketSigsScalar(line.data(), sig))
                << "round " << round << " sig " << sig;
        }
    }
}

TEST(BucketScan, MaskedDispatchAgreesWithScalarOracle)
{
    // The masked scan (24-bit signatures under the Cuckoo++ aux byte,
    // see table_layout.hh) must ignore the aux byte entirely: entries
    // whose low 24 bits match count regardless of Bloom/stamp noise in
    // byte 3, and the dispatch agrees with the scalar reference.
    Xoshiro256 rng(0x91a5ced);
    for (int round = 0; round < 2000; ++round) {
        std::array<BucketEntry, entriesPerBucket> entries{};
        for (unsigned way = 0; way < entriesPerBucket; ++way) {
            entries[way].sig = static_cast<std::uint32_t>(rng.next());
            entries[way].kvRef =
                (rng.next() % 3) ? static_cast<std::uint32_t>(
                                       rng.next() % 1000)
                                 : 0;
        }
        // Force a few masked collisions: same low 24 bits, noisy aux.
        const std::uint32_t probe =
            static_cast<std::uint32_t>(rng.next()) & sig24Mask;
        entries[1].sig = probe | 0xa5000000u;
        entries[4].sig = probe | 0x0f000000u;
        const auto line = makeLine(entries);

        const unsigned got = scanBucketSigsMasked(line.data(), probe);
        EXPECT_EQ(got, scanBucketSigsMaskedScalar(line.data(), probe))
            << "round " << round;
        unsigned want = 0;
        for (unsigned way = 0; way < entriesPerBucket; ++way)
            if (entries[way].kvRef != 0 &&
                (entries[way].sig & sig24Mask) == probe)
                want |= 1u << way;
        EXPECT_EQ(got, want) << "round " << round;
    }
}

TEST(BucketScan, ReportsCompiledKind)
{
    // The build always provides a dispatch; its label must agree with
    // the SIMD flag.
    if (bucketScanSimd) {
        EXPECT_TRUE(std::string(bucketScanKind) == "avx2" ||
                    std::string(bucketScanKind) == "sse2");
    } else {
        EXPECT_STREQ(bucketScanKind, "scalar");
    }
}

} // namespace
} // namespace halo
