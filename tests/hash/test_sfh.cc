/**
 * @file
 * Unit tests for the single-function-hash baseline table.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "hash/sfh_table.hh"

namespace halo {
namespace {

std::vector<std::uint8_t>
makeKey(std::uint64_t id, std::uint32_t len = 16)
{
    std::vector<std::uint8_t> key(len, 0);
    std::memcpy(key.data(), &id, sizeof(id));
    return key;
}

TEST(Sfh, InsertLookupEraseRoundTrip)
{
    SimMemory mem(32 << 20);
    SingleFunctionTable t(mem, {16, 256, HashKind::XxMix, 1, 5.0});
    for (std::uint64_t i = 0; i < 200; ++i) {
        const auto key = makeKey(i);
        ASSERT_TRUE(t.insert(KeyView(key), i + 1));
    }
    for (std::uint64_t i = 0; i < 200; ++i) {
        const auto key = makeKey(i);
        ASSERT_EQ(*t.lookup(KeyView(key)), i + 1);
    }
    const auto key = makeKey(7);
    EXPECT_TRUE(t.erase(KeyView(key)));
    EXPECT_FALSE(t.lookup(KeyView(key)).has_value());
}

TEST(Sfh, UpdateInPlace)
{
    SimMemory mem(32 << 20);
    SingleFunctionTable t(mem, {16, 64, HashKind::XxMix, 2, 5.0});
    const auto key = makeKey(5);
    t.insert(KeyView(key), 1);
    t.insert(KeyView(key), 2);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(*t.lookup(KeyView(key)), 2u);
}

TEST(Sfh, UtilizationIsLow)
{
    // The paper's point: SFH wastes space — ~20% utilization at the
    // default 5x oversizing.
    SimMemory mem(128 << 20);
    SingleFunctionTable t(mem, {16, 50000, HashKind::XxMix, 3, 5.0});
    std::uint64_t inserted = 0;
    for (std::uint64_t i = 0; i < 50000; ++i) {
        const auto key = makeKey(i);
        inserted += t.insert(KeyView(key), i) ? 1 : 0;
    }
    // Nearly everything fits thanks to oversizing...
    EXPECT_GT(static_cast<double>(inserted) / 50000.0, 0.99);
    // ...but the bucket array is mostly empty.
    EXPECT_LT(t.utilization(), 0.25);
}

TEST(Sfh, FootprintLargerThanCuckooForSameKeys)
{
    SimMemory mem(256 << 20);
    SingleFunctionTable sfh(mem, {16, 10000, HashKind::XxMix, 4, 5.0});
    CuckooHashTable cuckoo(mem, {16, 10000, HashKind::XxMix, 4, 0.95});
    EXPECT_GT(static_cast<double>(sfh.footprintBytes()),
              1.5 * static_cast<double>(cuckoo.footprintBytes()));
}

TEST(Sfh, BucketOverflowFailsInsert)
{
    // With oversize=1 and few buckets, collisions overflow quickly.
    SimMemory mem(32 << 20);
    SingleFunctionTable t(mem, {16, 64, HashKind::XxMix, 5, 1.0});
    std::uint64_t failures = 0;
    for (std::uint64_t i = 0; i < 64; ++i) {
        const auto key = makeKey(i * 977 + 13);
        failures += t.insert(KeyView(key), i) ? 0 : 1;
    }
    // 64 keys into 8 8-way buckets: overflow is practically certain.
    EXPECT_GT(failures, 0u);
}

TEST(Sfh, LookupTraceHasSingleBucket)
{
    SimMemory mem(32 << 20);
    SingleFunctionTable t(mem, {16, 64, HashKind::XxMix, 6, 5.0});
    const auto key = makeKey(9);
    t.insert(KeyView(key), 1);
    AccessTrace trace;
    ASSERT_TRUE(t.lookup(KeyView(key), &trace).has_value());
    unsigned buckets = 0;
    for (const MemRef &ref : trace)
        buckets += ref.phase == AccessPhase::Bucket ? 1 : 0;
    EXPECT_EQ(buckets, 1u);
}

} // namespace
} // namespace halo
