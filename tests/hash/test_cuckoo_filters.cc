/**
 * @file
 * Tests for the cuckoo table's lookup filters (DESIGN.md §13): the
 * EMOMA counting block filter that steers every probe to one bucket,
 * and the Cuckoo++ per-bucket negative filter (displaced-signature
 * Bloom + timestamp epoch packed into the bucket line's aux bytes).
 *
 * The filters are pure lookup accelerators, so the load-bearing
 * properties are (a) every mode returns exactly what the unfiltered
 * table returns for any operation sequence, (b) traced and untraced
 * lookups agree, scalar and bulk agree, and (c) the traced reference
 * streams actually show the access-count wins the modes claim: one
 * bucket read per steered lookup, miss termination without a key-value
 * probe, one filter line per EMOMA query.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "hash/cuckoo_table.hh"
#include "mem/sim_memory.hh"
#include "sim/random.hh"

namespace halo {
namespace {

constexpr std::uint32_t keyLen = 16;

std::array<std::uint8_t, keyLen>
keyForId(std::uint64_t id)
{
    std::array<std::uint8_t, keyLen> key{};
    std::memcpy(key.data(), &id, sizeof(id));
    const std::uint64_t mixed = id * 0x9e3779b97f4a7c15ull;
    std::memcpy(key.data() + 8, &mixed, sizeof(mixed));
    return key;
}

unsigned
readsOf(const AccessTrace &trace, AccessPhase phase)
{
    unsigned n = 0;
    for (const MemRef &r : trace)
        n += !r.write && r.phase == phase;
    return n;
}

constexpr CuckooFilter allModes[] = {CuckooFilter::None,
                                     CuckooFilter::Emoma,
                                     CuckooFilter::CuckooPP,
                                     CuckooFilter::Both};
constexpr CuckooFilter filteredModes[] = {CuckooFilter::Emoma,
                                          CuckooFilter::CuckooPP,
                                          CuckooFilter::Both};

CuckooHashTable
makeTable(SimMemory &mem, std::uint64_t capacity, CuckooFilter mode)
{
    CuckooHashTable::Config cfg;
    cfg.keyLen = keyLen;
    cfg.capacity = capacity;
    cfg.filter = mode;
    return CuckooHashTable(mem, cfg);
}

/**
 * Every filter mode must be observationally identical to the
 * unfiltered table across a long random insert/erase/lookup sequence
 * that drives displacement (the mutation paths all maintain filter
 * state), checked against a host-map reference.
 */
TEST(CuckooFilters, RandomOpsMatchReferenceInEveryMode)
{
    constexpr std::uint64_t capacity = 30000;
    constexpr std::uint64_t keyRange = 40000; // > capacity: misses too
    constexpr std::uint64_t ops = 1u << 20;

    for (const CuckooFilter mode : filteredModes) {
        SimMemory mem(256ull << 20);
        CuckooHashTable table = makeTable(mem, capacity, mode);
        std::unordered_map<std::uint64_t, std::uint64_t> ref;
        Xoshiro256 rng(0xf117e5 + static_cast<unsigned>(mode));

        for (std::uint64_t op = 0; op < ops; ++op) {
            const std::uint64_t id = rng.nextBounded(keyRange);
            const auto key = keyForId(id);
            const KeyView kv(key.data(), key.size());
            switch (rng.next() % 4) {
              case 0:   // insert / update
              case 1: {
                const std::uint64_t val = (op << 16) | (id & 0xffff);
                if (table.insert(kv, val))
                    ref[id] = val;
                else
                    EXPECT_GE(ref.size(), capacity * 4 / 5)
                        << "insert failed far from the ceiling";
                break;
              }
              case 2: { // erase
                const bool erased = table.erase(kv);
                EXPECT_EQ(erased, ref.erase(id) != 0) << "id " << id;
                break;
              }
              default: { // lookup
                const auto v = table.lookup(kv);
                const auto it = ref.find(id);
                ASSERT_EQ(v.has_value(), it != ref.end())
                    << "id " << id << " op " << op;
                if (v)
                    EXPECT_EQ(*v, it->second);
                break;
              }
            }
        }
        EXPECT_EQ(table.size(), ref.size());
        EXPECT_GT(table.cuckooMoves(), 0u)
            << "sequence never displaced; test is too weak";
        EXPECT_FALSE(table.filterDegraded());

        // Full sweep: everything the reference holds is findable with
        // its latest value; a sample of absent ids stays absent.
        for (const auto &[id, val] : ref) {
            const auto key = keyForId(id);
            const auto v = table.lookup(KeyView(key.data(), key.size()));
            ASSERT_TRUE(v.has_value()) << "id " << id;
            EXPECT_EQ(*v, val);
        }
        for (std::uint64_t id = keyRange; id < keyRange + 1000; ++id) {
            const auto key = keyForId(id);
            EXPECT_FALSE(
                table.lookup(KeyView(key.data(), key.size()))
                    .has_value());
        }
    }
}

/**
 * Traced and untraced lookups must return identical results in every
 * mode — tracing selects the reference-recording twin of the same
 * probe, never a different algorithm outcome.
 */
TEST(CuckooFilters, TracedAndUntracedLookupsAgree)
{
    constexpr std::uint64_t capacity = 8000;
    for (const CuckooFilter mode : allModes) {
        SimMemory mem(64ull << 20);
        CuckooHashTable table = makeTable(mem, capacity, mode);
        for (std::uint64_t id = 0; id < capacity; ++id) {
            const auto key = keyForId(id);
            ASSERT_TRUE(table.insert(KeyView(key.data(), key.size()),
                                     id * 7 + 1));
        }
        AccessTrace trace;
        for (std::uint64_t id = 0; id < 2 * capacity; id += 3) {
            const auto key = keyForId(id);
            const KeyView kv(key.data(), key.size());
            const auto untraced = table.lookup(kv);
            trace.clear();
            const auto traced = table.lookup(kv, &trace, invalidAddr);
            ASSERT_EQ(traced.has_value(), untraced.has_value())
                << "id " << id;
            if (traced)
                EXPECT_EQ(*traced, *untraced);
            EXPECT_FALSE(trace.empty());
        }
    }
}

/**
 * The EMOMA steering contract, read off the traced reference stream:
 * every lookup touches exactly one filter line, hits average one
 * bucket read (a steering false positive may add the fallback probe,
 * never more), and a steer-negative miss terminates after ONE bucket
 * read with no key-value probe. The counting filter has no false
 * negatives, so no lookup may read more than two buckets.
 */
TEST(CuckooFilters, EmomaStoresSteerToOneBucket)
{
    constexpr std::uint64_t capacity = 20000;
    SimMemory mem(128ull << 20);
    CuckooHashTable table = makeTable(mem, capacity,
                                      CuckooFilter::Emoma);
    for (std::uint64_t id = 0; id < capacity; ++id) {
        const auto key = keyForId(id);
        ASSERT_TRUE(
            table.insert(KeyView(key.data(), key.size()), id + 1));
    }
    ASSERT_GT(table.cuckooMoves(), 0u);
    ASSERT_FALSE(table.filterDegraded());

    AccessTrace trace;
    std::uint64_t hits = 0, hitBuckets = 0;
    std::uint64_t misses = 0, missBuckets = 0, oneBucketMisses = 0;
    for (std::uint64_t id = 0; id < 2 * capacity; id += 5) {
        const auto key = keyForId(id);
        trace.clear();
        const auto v = table.lookup(KeyView(key.data(), key.size()),
                                    &trace, invalidAddr);
        // Exactly one steering line per lookup — except for the rare
        // key whose two candidate buckets coincide (the sig-derived
        // offset wraps to zero), where steering is pointless and the
        // single probe needs no filter at all.
        const unsigned filterReads = readsOf(trace, AccessPhase::Filter);
        const unsigned buckets = readsOf(trace, AccessPhase::Bucket);
        if (filterReads == 0)
            EXPECT_EQ(buckets, 1u) << "unsteered multi-bucket probe";
        else
            EXPECT_EQ(filterReads, 1u);
        ASSERT_GE(buckets, 1u);
        ASSERT_LE(buckets, 2u); // 2 = steering false positive fallback
        if (v) {
            ++hits;
            hitBuckets += buckets;
        } else {
            ++misses;
            missBuckets += buckets;
            oneBucketMisses += buckets == 1;
            // A steered miss that stopped at one bucket never chased a
            // key-value slot: the signature scan alone decided it.
            if (buckets == 1)
                EXPECT_EQ(readsOf(trace, AccessPhase::KeyValue), 0u);
        }
    }
    ASSERT_GT(hits, 0u);
    ASSERT_GT(misses, 0u);
    EXPECT_GT(oneBucketMisses, 0u);
    EXPECT_LE(double(hitBuckets) / double(hits), 1.05);
    EXPECT_LE(double(missBuckets) / double(misses), 1.05);
}

/**
 * Cuckoo++ negative filtering: while nothing has ever been displaced
 * out of a bucket, its Bloom is empty, so EVERY miss terminates after
 * the primary bucket's signature scan — exactly one bucket read, no
 * filter line (the Bloom rides the bucket line itself), no key-value
 * probe.
 */
TEST(CuckooFilters, CuckooPPBloomStopsMissesAtThePrimaryBucket)
{
    constexpr std::uint64_t capacity = 20000;
    SimMemory mem(128ull << 20);
    CuckooHashTable table = makeTable(mem, capacity,
                                      CuckooFilter::CuckooPP);
    // Low occupancy: no displacement, so every Bloom stays empty.
    constexpr std::uint64_t fill = capacity / 5;
    for (std::uint64_t id = 0; id < fill; ++id) {
        const auto key = keyForId(id);
        ASSERT_TRUE(
            table.insert(KeyView(key.data(), key.size()), id + 1));
    }
    ASSERT_EQ(table.cuckooMoves(), 0u);

    AccessTrace trace;
    std::uint64_t misses = 0;
    for (std::uint64_t id = fill; id < fill + 5000; ++id) {
        const auto key = keyForId(id);
        trace.clear();
        const auto v = table.lookup(KeyView(key.data(), key.size()),
                                    &trace, invalidAddr);
        ASSERT_FALSE(v.has_value());
        ++misses;
        EXPECT_EQ(readsOf(trace, AccessPhase::Bucket), 1u);
        EXPECT_EQ(readsOf(trace, AccessPhase::Filter), 0u);
        EXPECT_EQ(readsOf(trace, AccessPhase::KeyValue), 0u);
    }
    ASSERT_GT(misses, 0u);
}

/**
 * The timestamp epoch half of the Cuckoo++ aux bytes: inserts and
 * update-in-place stamp the touched bucket with the current epoch, so
 * a flow-aging scan can skip buckets whose stamp proves every entry
 * older than the horizon.
 */
TEST(CuckooFilters, TimestampEpochStampsTouchedBuckets)
{
    SimMemory mem(32ull << 20);
    CuckooHashTable table = makeTable(mem, 1000, CuckooFilter::Both);
    const std::uint64_t buckets = table.metadata().numBuckets;

    auto stampedWith = [&](std::uint32_t epoch) {
        std::uint64_t n = 0;
        for (std::uint64_t b = 0; b < buckets; ++b)
            n += table.bucketTimestamp(b) == epoch;
        return n;
    };

    ASSERT_EQ(table.timestampEpoch(), 0u);
    table.setTimestampEpoch(42);
    const auto key = keyForId(1);
    ASSERT_TRUE(table.insert(KeyView(key.data(), key.size()), 7));
    EXPECT_EQ(stampedWith(42), 1u) << "insert must stamp its bucket";

    // Update-in-place re-stamps under the new epoch.
    table.setTimestampEpoch(43);
    ASSERT_TRUE(table.insert(KeyView(key.data(), key.size()), 8));
    EXPECT_EQ(stampedWith(42), 0u);
    EXPECT_EQ(stampedWith(43), 1u);
    EXPECT_EQ(*table.lookup(KeyView(key.data(), key.size())), 8u);
}

/**
 * The bulk pipeline must agree lane-for-lane with scalar lookups in
 * every filter mode, and when traces are requested each lane's stream
 * must be byte-identical to the scalar traced lookup of that key.
 */
TEST(CuckooFilters, BulkAgreesWithScalarInEveryMode)
{
    constexpr std::uint64_t capacity = 8000;
    for (const CuckooFilter mode : allModes) {
        SimMemory mem(64ull << 20);
        CuckooHashTable table = makeTable(mem, capacity, mode);
        for (std::uint64_t id = 0; id < capacity; ++id) {
            const auto key = keyForId(id);
            ASSERT_TRUE(table.insert(KeyView(key.data(), key.size()),
                                     id * 11 + 3));
        }

        Xoshiro256 rng(0xbcd + static_cast<unsigned>(mode));
        for (int batch = 0; batch < 64; ++batch) {
            std::array<std::array<std::uint8_t, keyLen>, maxBulkLanes>
                keys;
            std::array<const std::uint8_t *, maxBulkLanes> ptrs;
            for (unsigned lane = 0; lane < maxBulkLanes; ++lane) {
                keys[lane] = keyForId(rng.nextBounded(2 * capacity));
                ptrs[lane] = keys[lane].data();
            }

            std::uint64_t values[maxBulkLanes];
            const std::uint32_t mask = table.lookupUntracedBulk(
                ptrs.data(), maxBulkLanes, values, nullptr);

            std::array<AccessTrace, maxBulkLanes> laneTraces;
            std::array<AccessTrace *, maxBulkLanes> tracePtrs;
            for (unsigned lane = 0; lane < maxBulkLanes; ++lane)
                tracePtrs[lane] = &laneTraces[lane];
            std::uint64_t tracedValues[maxBulkLanes];
            const std::uint32_t tracedMask = table.lookupUntracedBulk(
                ptrs.data(), maxBulkLanes, tracedValues,
                tracePtrs.data());
            EXPECT_EQ(tracedMask, mask);

            for (unsigned lane = 0; lane < maxBulkLanes; ++lane) {
                AccessTrace scalarTrace;
                const auto v = table.lookup(
                    KeyView(ptrs[lane], keyLen), &scalarTrace,
                    invalidAddr);
                ASSERT_EQ(v.has_value(), (mask >> lane & 1) != 0)
                    << "lane " << lane;
                if (v) {
                    EXPECT_EQ(*v, values[lane]);
                    EXPECT_EQ(*v, tracedValues[lane]);
                }
                // Traced bulk records the scalar reference stream.
                ASSERT_EQ(laneTraces[lane].size(), scalarTrace.size())
                    << "lane " << lane;
                for (std::size_t r = 0; r < scalarTrace.size(); ++r) {
                    EXPECT_EQ(laneTraces[lane][r].addr,
                              scalarTrace[r].addr);
                    EXPECT_EQ(laneTraces[lane][r].size,
                              scalarTrace[r].size);
                    EXPECT_EQ(laneTraces[lane][r].write,
                              scalarTrace[r].write);
                    EXPECT_EQ(laneTraces[lane][r].phase,
                              scalarTrace[r].phase);
                }
            }
        }
    }
}

/**
 * Filter metadata surfaces: modes report what they enable, footprints
 * only exist where a counter region was allocated, and the simulated
 * footprint accounting includes it.
 */
TEST(CuckooFilters, ModeReportingAndFootprint)
{
    SimMemory mem(64ull << 20);
    CuckooHashTable none = makeTable(mem, 1000, CuckooFilter::None);
    CuckooHashTable emoma = makeTable(mem, 1000, CuckooFilter::Emoma);
    CuckooHashTable pp = makeTable(mem, 1000, CuckooFilter::CuckooPP);

    EXPECT_FALSE(cuckooFilterSteers(none.filterMode()));
    EXPECT_FALSE(cuckooFilterNegative(none.filterMode()));
    EXPECT_TRUE(cuckooFilterSteers(emoma.filterMode()));
    EXPECT_FALSE(cuckooFilterNegative(emoma.filterMode()));
    EXPECT_FALSE(cuckooFilterSteers(pp.filterMode()));
    EXPECT_TRUE(cuckooFilterNegative(pp.filterMode()));
    EXPECT_TRUE(cuckooFilterSteers(CuckooFilter::Both));
    EXPECT_TRUE(cuckooFilterNegative(CuckooFilter::Both));

    EXPECT_EQ(none.filterFootprintBytes(), 0u);
    EXPECT_GT(emoma.filterFootprintBytes(), 0u);
    EXPECT_EQ(pp.filterFootprintBytes(), 0u); // rides the bucket line
    EXPECT_EQ(emoma.footprintBytes(),
              none.footprintBytes() + emoma.filterFootprintBytes());

    EXPECT_EQ(parseCuckooFilter("emoma"), CuckooFilter::Emoma);
    EXPECT_EQ(parseCuckooFilter("cuckoopp"), CuckooFilter::CuckooPP);
    EXPECT_EQ(parseCuckooFilter("both"), CuckooFilter::Both);
    EXPECT_EQ(parseCuckooFilter("none"), CuckooFilter::None);
    EXPECT_STREQ(cuckooFilterName(CuckooFilter::Both), "both");
}

/**
 * The occupancy-adaptive steering switch (DESIGN.md §16 satellite):
 * past the configured load factor EMOMA steering stops paying, so the
 * table must suppress it — plain two-bucket probes, zero filter-line
 * reads — and release it again only once occupancy falls a hysteresis
 * band (7/8 of the trip point) lower. Lookup results must be correct
 * in both modes and across both transitions.
 */
TEST(CuckooFilters, AdaptiveSwitchSuppressesSteeringAtHighOccupancy)
{
    constexpr std::uint64_t capacity = 20000;
    constexpr double trip = 0.5;
    SimMemory mem(128ull << 20);
    CuckooHashTable::Config cfg;
    cfg.keyLen = keyLen;
    cfg.capacity = capacity;
    cfg.filter = CuckooFilter::Emoma;
    cfg.adaptiveFilterLoadFactor = trip;
    CuckooHashTable table(mem, cfg);

    auto filterReadsOverSample = [&](std::uint64_t upTo) {
        AccessTrace trace;
        unsigned filterReads = 0;
        for (std::uint64_t id = 0; id < upTo; id += 97) {
            const auto key = keyForId(id);
            trace.clear();
            const auto v = table.lookup(
                KeyView(key.data(), key.size()), &trace, invalidAddr);
            EXPECT_TRUE(v.has_value()) << "id " << id;
            if (v)
                EXPECT_EQ(*v, id * 3 + 7);
            filterReads += readsOf(trace, AccessPhase::Filter);
            EXPECT_LE(readsOf(trace, AccessPhase::Bucket), 2u);
        }
        return filterReads;
    };

    // Below the threshold steering runs: filter lines show up in the
    // traced reference streams.
    std::uint64_t id = 0;
    while (table.loadFactor() <= trip - 0.03) {
        const auto key = keyForId(id);
        ASSERT_TRUE(
            table.insert(KeyView(key.data(), key.size()), id * 3 + 7));
        ++id;
    }
    EXPECT_FALSE(table.steeringSuppressed());
    EXPECT_EQ(table.filterModeSwitches(), 0u);
    EXPECT_GT(filterReadsOverSample(id), 0u);

    // Cross the trip point: one switch, steering off.
    while (!table.steeringSuppressed()) {
        ASSERT_LT(id, capacity) << "switch never tripped";
        const auto key = keyForId(id);
        ASSERT_TRUE(
            table.insert(KeyView(key.data(), key.size()), id * 3 + 7));
        ++id;
    }
    EXPECT_EQ(table.filterModeSwitches(), 1u);
    EXPECT_GT(table.loadFactor(), trip);

    // Suppressed: correct results, not one filter line read — and
    // misses stay misses (the plain two-bucket probe needs no filter).
    EXPECT_EQ(filterReadsOverSample(id), 0u);
    for (std::uint64_t miss = capacity * 2; miss < capacity * 2 + 500;
         ++miss) {
        const auto key = keyForId(miss);
        EXPECT_FALSE(
            table.lookup(KeyView(key.data(), key.size())).has_value());
    }

    // Hysteresis: droop below the trip point but above the release
    // band (trip * 0.875) must NOT flap steering back on.
    while (table.loadFactor() >= trip * 0.875 + 0.03) {
        const auto key = keyForId(--id);
        ASSERT_TRUE(table.erase(KeyView(key.data(), key.size())));
    }
    EXPECT_TRUE(table.steeringSuppressed());
    EXPECT_EQ(table.filterModeSwitches(), 1u);

    // Drain past the release band: steering resumes (second switch)
    // and the maintained-throughout filter steers correctly again.
    while (table.steeringSuppressed()) {
        ASSERT_GT(id, 0u) << "switch never released";
        const auto key = keyForId(--id);
        ASSERT_TRUE(table.erase(KeyView(key.data(), key.size())));
    }
    EXPECT_EQ(table.filterModeSwitches(), 2u);
    EXPECT_LT(table.loadFactor(), trip * 0.875);
    EXPECT_GT(filterReadsOverSample(id), 0u);
    EXPECT_FALSE(table.filterDegraded());
}

} // namespace
} // namespace halo
