/**
 * @file
 * Unit and property tests for the cuckoo hash table.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "hash/cuckoo_table.hh"
#include "sim/random.hh"

namespace halo {
namespace {

std::vector<std::uint8_t>
makeKey(std::uint64_t id, std::uint32_t len = 16)
{
    std::vector<std::uint8_t> key(len, 0);
    std::memcpy(key.data(), &id, sizeof(id));
    key[len - 1] = static_cast<std::uint8_t>(id >> 56) ^ 0x5a;
    return key;
}

TEST(Cuckoo, InsertLookupRoundTrip)
{
    SimMemory mem(32 << 20);
    CuckooHashTable t(mem, {16, 1024, HashKind::XxMix, 1, 0.95});
    for (std::uint64_t i = 0; i < 100; ++i) {
        const auto key = makeKey(i);
        ASSERT_TRUE(t.insert(KeyView(key), i * 10 + 1));
    }
    EXPECT_EQ(t.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i) {
        const auto key = makeKey(i);
        const auto v = t.lookup(KeyView(key));
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i * 10 + 1);
    }
}

TEST(Cuckoo, MissingKeyNotFound)
{
    SimMemory mem(32 << 20);
    CuckooHashTable t(mem, {16, 64, HashKind::XxMix, 2, 0.95});
    const auto key = makeKey(1);
    t.insert(KeyView(key), 5);
    const auto other = makeKey(999);
    EXPECT_FALSE(t.lookup(KeyView(other)).has_value());
}

TEST(Cuckoo, UpdateInPlace)
{
    SimMemory mem(32 << 20);
    CuckooHashTable t(mem, {16, 64, HashKind::XxMix, 3, 0.95});
    const auto key = makeKey(7);
    t.insert(KeyView(key), 1);
    t.insert(KeyView(key), 2);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(*t.lookup(KeyView(key)), 2u);
}

TEST(Cuckoo, EraseRemovesAndFreesSlot)
{
    SimMemory mem(32 << 20);
    CuckooHashTable t(mem, {16, 64, HashKind::XxMix, 4, 0.95});
    const auto key = makeKey(11);
    t.insert(KeyView(key), 3);
    EXPECT_TRUE(t.erase(KeyView(key)));
    EXPECT_FALSE(t.lookup(KeyView(key)).has_value());
    EXPECT_EQ(t.size(), 0u);
    EXPECT_FALSE(t.erase(KeyView(key)));
    // The slot can be reused.
    for (std::uint64_t i = 0; i < 64; ++i) {
        const auto k = makeKey(i + 100);
        ASSERT_TRUE(t.insert(KeyView(k), i));
    }
}

/**
 * Erase interleaved with displacement churn near the load-factor
 * ceiling: keys erased mid-sequence must stay gone, survivors must
 * stay findable with their latest value even after cuckoo moves
 * relocate them, and freed slots must admit new keys.
 */
TEST(Cuckoo, EraseInterleavedWithDisplacementAtHighLoad)
{
    SimMemory mem(64 << 20);
    const std::uint64_t capacity = 30000;
    CuckooHashTable t(mem, {16, capacity, HashKind::XxMix, 15, 0.95});
    std::map<std::uint64_t, std::uint64_t> ref;

    // Fill to the ceiling so every later insert displaces.
    for (std::uint64_t i = 0; i < capacity; ++i)
        if (t.insert(KeyView(makeKey(i)), i + 1))
            ref[i] = i + 1;
    const std::uint64_t movesAfterFill = t.cuckooMoves();
    ASSERT_GT(movesAfterFill, 0u);

    // Waves of erase-then-insert at full occupancy: each wave frees a
    // pseudo-random cohort, then inserts fresh keys into the holes.
    Xoshiro256 rng(0xe7a5e);
    std::uint64_t next_id = capacity;
    for (int wave = 0; wave < 8; ++wave) {
        std::vector<std::uint64_t> victims;
        for (const auto &[id, val] : ref)
            if ((rng.next() & 7) == 0)
                victims.push_back(id);
        for (const std::uint64_t id : victims) {
            ASSERT_TRUE(t.erase(KeyView(makeKey(id))));
            EXPECT_FALSE(t.erase(KeyView(makeKey(id)))); // idempotent
            ref.erase(id);
        }
        for (std::size_t n = 0; n < victims.size(); ++n) {
            const std::uint64_t id = next_id++;
            if (t.insert(KeyView(makeKey(id)), id + 1))
                ref[id] = id + 1;
        }
    }
    EXPECT_GT(t.cuckooMoves(), movesAfterFill)
        << "waves never displaced: load too low to stress erase";

    // No lost, resurrected, or corrupted entries.
    EXPECT_EQ(t.size(), ref.size());
    for (const auto &[id, val] : ref) {
        const auto got = t.lookup(KeyView(makeKey(id)));
        ASSERT_TRUE(got.has_value()) << "lost key " << id;
        EXPECT_EQ(*got, val);
    }
    for (std::uint64_t id = 0; id < capacity; ++id) {
        if (!ref.count(id)) {
            ASSERT_FALSE(t.lookup(KeyView(makeKey(id))).has_value())
                << "resurrected key " << id;
        }
    }
}

/**
 * Tracing is observation only: an identical op sequence (with erase)
 * against a traced and an untraced table must produce identical
 * return values and identical final table state. Erase traces must
 * record writes (version bumps + slot clear).
 */
TEST(Cuckoo, ErasedTracedMatchesUntraced)
{
    SimMemory mem_a(32 << 20), mem_b(32 << 20);
    const CuckooHashTable::Config cfg{16, 512, HashKind::XxMix, 16,
                                      0.95};
    CuckooHashTable traced(mem_a, cfg), plain(mem_b, cfg);

    Xoshiro256 rng(0x7ace);
    bool sawEraseWrites = false;
    for (int op = 0; op < 3000; ++op) {
        const auto key = makeKey(rng.nextBounded(300));
        const int what = static_cast<int>(rng.nextBounded(10));
        AccessTrace trace;
        if (what < 5) {
            const std::uint64_t val = rng.next() | 1;
            ASSERT_EQ(traced.insert(KeyView(key), val, &trace),
                      plain.insert(KeyView(key), val));
        } else if (what < 8) {
            const bool erased = traced.erase(KeyView(key), &trace);
            ASSERT_EQ(erased, plain.erase(KeyView(key)));
            if (erased) {
                unsigned writes = 0;
                for (const MemRef &ref : trace)
                    writes += ref.write ? 1 : 0;
                EXPECT_GE(writes, 3u); // version bump x2 + slot clear
                sawEraseWrites = true;
            } else {
                for (const MemRef &ref : trace)
                    EXPECT_FALSE(ref.write); // miss mutates nothing
            }
        } else {
            ASSERT_EQ(traced.lookup(KeyView(key), &trace),
                      plain.lookup(KeyView(key)));
        }
    }
    EXPECT_TRUE(sawEraseWrites);
    EXPECT_EQ(traced.size(), plain.size());
    for (std::uint64_t id = 0; id < 300; ++id) {
        const auto key = makeKey(id);
        ASSERT_EQ(traced.lookup(KeyView(key)),
                  plain.lookup(KeyView(key)));
    }
}

TEST(Cuckoo, FillsToHighOccupancyViaDisplacement)
{
    SimMemory mem(64 << 20);
    // Chosen so the power-of-two bucket array is nearly full at 95%:
    // 30000/0.95 entries round up to 4096 buckets = 32768 slots.
    const std::uint64_t capacity = 30000;
    CuckooHashTable t(mem, {16, capacity, HashKind::XxMix, 5, 0.95});
    std::uint64_t inserted = 0;
    for (std::uint64_t i = 0; i < capacity; ++i) {
        const auto key = makeKey(i);
        if (t.insert(KeyView(key), i))
            ++inserted;
    }
    // The paper quotes ~95% utilization for cuckoo hashing.
    EXPECT_GT(static_cast<double>(inserted) /
                  static_cast<double>(capacity),
              0.97);
    EXPECT_GT(t.loadFactor(), 0.80);
    EXPECT_GT(t.cuckooMoves(), 0u);
    // Everything inserted must still be findable (no lost entries).
    std::uint64_t found = 0;
    for (std::uint64_t i = 0; i < capacity; ++i) {
        const auto key = makeKey(i);
        if (t.lookup(KeyView(key)).has_value())
            ++found;
    }
    EXPECT_EQ(found, inserted);
}

TEST(Cuckoo, LookupTraceShape)
{
    SimMemory mem(32 << 20);
    CuckooHashTable t(mem, {16, 256, HashKind::XxMix, 6, 0.95});
    const auto key = makeKey(21);
    t.insert(KeyView(key), 9);

    AccessTrace trace;
    ASSERT_TRUE(t.lookup(KeyView(key), &trace).has_value());

    // Metadata first, then version lock, key fetch, bucket(s), kv.
    ASSERT_GE(trace.size(), 5u);
    EXPECT_EQ(trace[0].phase, AccessPhase::Metadata);
    EXPECT_EQ(trace[1].phase, AccessPhase::Lock);
    EXPECT_EQ(trace[2].phase, AccessPhase::KeyFetch);
    unsigned buckets = 0, kvs = 0, locks = 0;
    for (const MemRef &ref : trace) {
        EXPECT_FALSE(ref.write);
        buckets += ref.phase == AccessPhase::Bucket ? 1 : 0;
        kvs += ref.phase == AccessPhase::KeyValue ? 1 : 0;
        locks += ref.phase == AccessPhase::Lock ? 1 : 0;
    }
    EXPECT_GE(buckets, 1u);
    EXPECT_LE(buckets, 2u);
    EXPECT_GE(kvs, 1u);
    EXPECT_EQ(locks, 2u); // optimistic-lock sample + re-validate
}

TEST(Cuckoo, InsertTraceContainsWrites)
{
    SimMemory mem(32 << 20);
    CuckooHashTable t(mem, {16, 256, HashKind::XxMix, 7, 0.95});
    const auto key = makeKey(33);
    AccessTrace trace;
    ASSERT_TRUE(t.insert(KeyView(key), 4, &trace));
    unsigned writes = 0;
    for (const MemRef &ref : trace)
        writes += ref.write ? 1 : 0;
    EXPECT_GE(writes, 3u); // version bump x2 + entry + kv
}

TEST(Cuckoo, VersionCounterAdvancesOnWrites)
{
    SimMemory mem(32 << 20);
    CuckooHashTable t(mem, {16, 64, HashKind::XxMix, 8, 0.95});
    const Addr ver = t.versionAddr();
    EXPECT_EQ(mem.load<std::uint64_t>(ver), 0u);
    const auto key = makeKey(3);
    t.insert(KeyView(key), 1);
    const std::uint64_t after_insert = mem.load<std::uint64_t>(ver);
    EXPECT_GE(after_insert, 2u); // pre+post bump
    EXPECT_EQ(after_insert % 2, 0u); // readers see even = stable
    t.erase(KeyView(key));
    EXPECT_GT(mem.load<std::uint64_t>(ver), after_insert);
}

TEST(Cuckoo, MetadataSelfDescribing)
{
    SimMemory mem(32 << 20);
    CuckooHashTable t(mem, {24, 512, HashKind::Jenkins, 9, 0.95});
    const auto md = mem.load<TableMetadata>(t.metadataAddr());
    EXPECT_EQ(md.magic, tableMagic);
    EXPECT_EQ(md.keyLen, 24u);
    EXPECT_EQ(md.hashKind,
              static_cast<std::uint32_t>(HashKind::Jenkins));
    EXPECT_TRUE(isPowerOfTwo(md.numBuckets));
    EXPECT_EQ(md.bucketMask, md.numBuckets - 1);
    EXPECT_EQ(md.kvSlotBytes, kvSlotBytesFor(24));
}

TEST(Cuckoo, RejectsWrongKeyLength)
{
    SimMemory mem(32 << 20);
    CuckooHashTable t(mem, {16, 64, HashKind::XxMix, 10, 0.95});
    const auto key = makeKey(1, 8);
    EXPECT_THROW(t.lookup(KeyView(key)), PanicError);
}

TEST(Cuckoo, ForEachLineCoversFootprint)
{
    SimMemory mem(32 << 20);
    CuckooHashTable t(mem, {16, 1024, HashKind::XxMix, 11, 0.95});
    std::uint64_t lines = 0;
    t.forEachLine([&](Addr a) {
        EXPECT_TRUE(isLineAligned(a));
        ++lines;
    });
    EXPECT_GE(lines * cacheLineBytes, t.footprintBytes());
}

/** Property sweep: round-trip across key lengths and hash kinds. */
class CuckooParam
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, HashKind>>
{
};

TEST_P(CuckooParam, RandomOpsMatchReferenceMap)
{
    const auto [key_len, kind] = GetParam();
    SimMemory mem(64 << 20);
    CuckooHashTable t(mem, {key_len, 4096, kind, 12, 0.95});
    std::map<std::uint64_t, std::uint64_t> ref;
    Xoshiro256 rng(key_len * 7919 + static_cast<unsigned>(kind));

    for (int op = 0; op < 4000; ++op) {
        const std::uint64_t id = rng.nextBounded(800);
        const auto key = makeKey(id, key_len);
        const int what = static_cast<int>(rng.nextBounded(10));
        if (what < 6) {
            const std::uint64_t val = rng.next() | 1;
            if (t.insert(KeyView(key), val))
                ref[id] = val;
        } else if (what < 8) {
            const bool erased = t.erase(KeyView(key));
            EXPECT_EQ(erased, ref.erase(id) > 0);
        } else {
            const auto got = t.lookup(KeyView(key));
            const auto it = ref.find(id);
            if (it == ref.end()) {
                EXPECT_FALSE(got.has_value());
            } else {
                ASSERT_TRUE(got.has_value());
                EXPECT_EQ(*got, it->second);
            }
        }
    }
    EXPECT_EQ(t.size(), ref.size());
}

INSTANTIATE_TEST_SUITE_P(
    KeyLenAndKind, CuckooParam,
    ::testing::Combine(::testing::Values(8u, 13u, 16u, 32u, 64u),
                       ::testing::Values(HashKind::Crc32c,
                                         HashKind::Jenkins,
                                         HashKind::XxMix)));

void
expectSameRef(const MemRef &bulk, const MemRef &scalar, std::size_t lane,
              std::size_t k)
{
    EXPECT_EQ(bulk.addr, scalar.addr) << "lane " << lane << " ref " << k;
    EXPECT_EQ(bulk.size, scalar.size)
        << "lane " << lane << " ref " << k;
    EXPECT_EQ(bulk.phase, scalar.phase)
        << "lane " << lane << " ref " << k;
    EXPECT_EQ(bulk.write, scalar.write)
        << "lane " << lane << " ref " << k;
    EXPECT_EQ(bulk.dependsOnPrevious, scalar.dependsOnPrevious)
        << "lane " << lane << " ref " << k;
    EXPECT_EQ(bulk.lowEntropyBranch, scalar.lowEntropyBranch)
        << "lane " << lane << " ref " << k;
}

/** The pipelined bulk lookup must agree with the scalar path on
 *  values, hit mask, and the recorded reference stream, ref by ref. */
TEST(Cuckoo, BulkLookupMatchesScalarIncludingTraces)
{
    SimMemory mem(64 << 20);
    // Small table: low-entropy bucket indices and forced alternates.
    for (const std::uint64_t capacity : {64ull, 4096ull}) {
        CuckooHashTable t(mem,
                          {16, capacity, HashKind::XxMix, 13, 0.95});
        const std::uint64_t present = capacity / 2;
        for (std::uint64_t i = 0; i < present; ++i)
            ASSERT_TRUE(t.insert(KeyView(makeKey(i)), i + 1));

        // Alternate hits and misses across a full 32-lane batch.
        std::vector<std::vector<std::uint8_t>> keys;
        for (std::uint64_t i = 0; i < maxBulkLanes; ++i)
            keys.push_back(makeKey(i % 2 ? i : i + 100000));

        std::array<const std::uint8_t *, maxBulkLanes> key_ptrs;
        std::array<AccessTrace, maxBulkLanes> traces;
        std::array<AccessTrace *, maxBulkLanes> trace_ptrs;
        std::array<std::uint64_t, maxBulkLanes> values{};
        for (std::size_t i = 0; i < maxBulkLanes; ++i) {
            key_ptrs[i] = keys[i].data();
            trace_ptrs[i] = &traces[i];
        }

        const std::uint32_t mask = t.lookupUntracedBulk(
            key_ptrs.data(), maxBulkLanes, values.data(),
            trace_ptrs.data());

        for (std::size_t i = 0; i < maxBulkLanes; ++i) {
            AccessTrace scalar_trace;
            const auto scalar =
                t.lookup(KeyView(keys[i]), &scalar_trace);
            EXPECT_EQ((mask >> i) & 1u, scalar.has_value() ? 1u : 0u)
                << "lane " << i;
            if (scalar)
                EXPECT_EQ(values[i], *scalar) << "lane " << i;
            ASSERT_EQ(traces[i].size(), scalar_trace.size())
                << "lane " << i;
            for (std::size_t k = 0; k < traces[i].size(); ++k)
                expectSameRef(traces[i][k], scalar_trace[k], i, k);
        }
    }
}

TEST(Cuckoo, BulkLookupPartialBatchAndNoTraces)
{
    SimMemory mem(32 << 20);
    CuckooHashTable t(mem, {16, 1024, HashKind::XxMix, 14, 0.95});
    for (std::uint64_t i = 0; i < 200; ++i)
        ASSERT_TRUE(t.insert(KeyView(makeKey(i)), i * 3 + 1));

    const auto k0 = makeKey(5), k1 = makeKey(999999), k2 = makeKey(42);
    const std::uint8_t *key_ptrs[3] = {k0.data(), k1.data(), k2.data()};
    std::uint64_t values[3] = {0, 0, 0};
    const std::uint32_t mask =
        t.lookupUntracedBulk(key_ptrs, 3, values);
    EXPECT_EQ(mask, 0b101u);
    EXPECT_EQ(values[0], 5u * 3 + 1);
    EXPECT_EQ(values[1], 0u); // miss lane untouched
    EXPECT_EQ(values[2], 42u * 3 + 1);
}

} // namespace
} // namespace halo
