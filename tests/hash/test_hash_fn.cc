/**
 * @file
 * Unit tests for hash functions and signature/bucket derivation.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "hash/hash_fn.hh"

namespace halo {
namespace {

std::vector<std::uint8_t>
bytesOf(const char *s)
{
    std::vector<std::uint8_t> v;
    while (*s)
        v.push_back(static_cast<std::uint8_t>(*s++));
    return v;
}

TEST(Crc32c, KnownVector)
{
    // CRC32c("123456789") = 0xE3069283 (well-known check value).
    const auto data = bytesOf("123456789");
    EXPECT_EQ(crc32c(std::span<const std::uint8_t>(data), 0),
              0xe3069283u);
}

TEST(Crc32c, SeedChangesDigest)
{
    const auto data = bytesOf("hello");
    EXPECT_NE(crc32c(std::span<const std::uint8_t>(data), 0),
              crc32c(std::span<const std::uint8_t>(data), 1));
}

TEST(HashFns, DeterministicAndKindSensitive)
{
    const auto data = bytesOf("flow-key-0123456");
    const std::span<const std::uint8_t> s(data);
    for (unsigned k = 0; k < numHashKinds; ++k) {
        const auto kind = static_cast<HashKind>(k);
        EXPECT_EQ(hashBytes(kind, 7, s), hashBytes(kind, 7, s));
    }
    EXPECT_NE(hashBytes(HashKind::Crc32c, 7, s),
              hashBytes(HashKind::XxMix, 7, s));
    EXPECT_NE(hashBytes(HashKind::Jenkins, 7, s),
              hashBytes(HashKind::XxMix, 7, s));
}

TEST(HashFns, AvalancheOnSingleByteChange)
{
    auto data = bytesOf("0123456789abcdef");
    const std::uint64_t h1 =
        hashBytes(HashKind::XxMix, 0, std::span<const std::uint8_t>(data));
    data[7] ^= 1;
    const std::uint64_t h2 =
        hashBytes(HashKind::XxMix, 0, std::span<const std::uint8_t>(data));
    // At least a quarter of the bits should flip.
    EXPECT_GT(__builtin_popcountll(h1 ^ h2), 16);
}

TEST(HashFns, DistributionAcrossBuckets)
{
    constexpr std::uint64_t buckets = 64;
    std::vector<unsigned> counts(buckets, 0);
    for (std::uint32_t i = 0; i < 64000; ++i) {
        std::uint8_t key[4];
        std::memcpy(key, &i, 4);
        const std::uint64_t h = hashBytes(
            HashKind::XxMix, 0, std::span<const std::uint8_t>(key, 4));
        ++counts[h % buckets];
    }
    for (unsigned c : counts) {
        EXPECT_GT(c, 500u);
        EXPECT_LT(c, 2000u);
    }
}

TEST(Signature, NeverZero)
{
    for (std::uint64_t h : {0ull, 0xffffull, 0x10000ull,
                            0xffffffffffffffffull, 0x0000ffff0000ull}) {
        EXPECT_NE(shortSignature(h), 0u);
    }
}

TEST(AlternativeBucket, IsInvolution)
{
    const std::uint64_t mask = 1023;
    for (std::uint64_t b = 0; b < 1024; b += 37) {
        for (std::uint32_t sig : {1u, 77u, 0xdeadu, 0xffffffffu}) {
            const std::uint64_t alt = alternativeBucket(b, sig, mask);
            EXPECT_LE(alt, mask);
            EXPECT_EQ(alternativeBucket(alt, sig, mask), b);
        }
    }
}

TEST(XxMixSymmetric, CommutativeInEndpoints)
{
    const std::vector<std::uint8_t> a = bytesOf("endp-A"),
                                    b = bytesOf("endp-B"),
                                    tail = bytesOf("t");
    for (std::uint64_t seed : {0ull, 0x1234ull, 0xffffffffull}) {
        EXPECT_EQ(xxMixSymmetric(a, b, tail, seed),
                  xxMixSymmetric(b, a, tail, seed));
    }
}

TEST(XxMixSymmetric, SensitiveToTailAndSeed)
{
    const std::vector<std::uint8_t> a = bytesOf("endp-A"),
                                    b = bytesOf("endp-B");
    const auto base = xxMixSymmetric(a, b, bytesOf("t"), 7);
    EXPECT_NE(base, xxMixSymmetric(a, b, bytesOf("u"), 7));
    EXPECT_NE(base, xxMixSymmetric(a, b, bytesOf("t"), 8));
    // And to the endpoint *set*, not just their order.
    EXPECT_NE(base, xxMixSymmetric(a, a, bytesOf("t"), 7));
}

TEST(XxMixSymmetric, EqualEndpointsMatchConcatenation)
{
    // With a == b the ordering is a no-op: digest equals a plain xxMix
    // over a || b || tail.
    const std::vector<std::uint8_t> a = bytesOf("same");
    std::vector<std::uint8_t> cat = a;
    cat.insert(cat.end(), a.begin(), a.end());
    cat.push_back('z');
    EXPECT_EQ(xxMixSymmetric(a, a, bytesOf("z"), 42),
              xxMix(cat, 42));
}

TEST(AlternativeBucket, UsuallyDiffersFromPrimary)
{
    const std::uint64_t mask = 255;
    unsigned same = 0;
    for (std::uint32_t sig = 1; sig < 1000; ++sig)
        same += alternativeBucket(5, sig, mask) == 5 ? 1 : 0;
    EXPECT_LT(same, 20u);
}

} // namespace
} // namespace halo
