/**
 * @file
 * Unit tests for the OoO core timing model.
 */

#include <gtest/gtest.h>

#include "cpu/core_model.hh"
#include "cpu/trace_builder.hh"

namespace halo {
namespace {

OpTrace
aluOps(unsigned n, bool chained)
{
    OpTrace ops;
    for (unsigned i = 0; i < n; ++i) {
        MicroOp op;
        op.kind = OpKind::Alu;
        op.dep = chained && i > 0 ? static_cast<std::int32_t>(i - 1) : -1;
        ops.push_back(op);
    }
    return ops;
}

TEST(CoreModel, IndependentAluBoundByIssueWidth)
{
    MemoryHierarchy hier;
    CoreModel core(hier, 0);
    const RunResult r = core.run(aluOps(400, false));
    // 400 ops at width 4 = 100 cycles, plus pipeline fill slack.
    EXPECT_GE(r.elapsed(), 100u);
    EXPECT_LE(r.elapsed(), 120u);
}

TEST(CoreModel, ChainedAluSerializes)
{
    MemoryHierarchy hier;
    CoreModel core(hier, 0);
    const RunResult r = core.run(aluOps(400, true));
    EXPECT_GE(r.elapsed(), 400u); // one per cycle at best
}

TEST(CoreModel, IssueWidthMatters)
{
    MemoryHierarchy hier;
    CoreModel narrow(hier, 0, CoreConfig{1, 192, 128, 128, 20, 1});
    CoreModel wide(hier, 1, CoreConfig{8, 192, 128, 128, 20, 1});
    const Cycles n = narrow.run(aluOps(256, false)).elapsed();
    const Cycles w = wide.run(aluOps(256, false)).elapsed();
    EXPECT_GT(n, 3 * w);
}

TEST(CoreModel, ScratchLoadsHitL1)
{
    MemoryHierarchy hier;
    CoreModel core(hier, 0);
    OpTrace ops;
    for (int i = 0; i < 10; ++i) {
        MicroOp op;
        op.kind = OpKind::Load;
        op.addr = invalidAddr;
        ops.push_back(op);
    }
    const RunResult r = core.run(ops);
    EXPECT_EQ(r.levelHits[static_cast<int>(MemLevel::L1)], 10u);
}

TEST(CoreModel, IndependentMissesOverlap)
{
    // 8 independent DRAM loads should take far less than 8x a single
    // DRAM latency thanks to MSHR-level parallelism.
    MemoryHierarchy hier;
    CoreModel core(hier, 0);
    OpTrace one;
    one.push_back(MicroOp{OpKind::Load, 0x100000, invalidAddr,
                          invalidAddr, 8, -1, AccessPhase::Payload});
    const Cycles single = core.run(one).elapsed();

    hier.flushAll();
    OpTrace eight;
    for (int i = 0; i < 8; ++i)
        eight.push_back(MicroOp{OpKind::Load,
                                0x200000 + static_cast<Addr>(i) * 4096,
                                invalidAddr, invalidAddr, 8, -1,
                                AccessPhase::Payload});
    const Cycles batch = core.run(eight).elapsed();
    EXPECT_LT(batch, 3 * single);
}

TEST(CoreModel, DependentMissesSerialize)
{
    MemoryHierarchy hier;
    CoreModel core(hier, 0);
    OpTrace ops;
    for (int i = 0; i < 4; ++i) {
        MicroOp op;
        op.kind = OpKind::Load;
        op.addr = 0x300000 + static_cast<Addr>(i) * 8192;
        op.dep = i > 0 ? static_cast<std::int32_t>(i - 1) : -1;
        ops.push_back(op);
    }
    const RunResult r = core.run(ops);
    // Four dependent DRAM accesses: at least 4 x ~150 cycles.
    EXPECT_GT(r.elapsed(), 600u);
    EXPECT_GT(r.stallCycles[static_cast<int>(MemLevel::DRAM)], 0u);
}

TEST(CoreModel, MshrLimitThrottlesMisses)
{
    MemoryHierarchy hier;
    CoreConfig few;
    few.mshrs = 1;
    CoreModel throttled(hier, 0, few);
    CoreModel free(hier, 1);

    auto missTrace = [](Addr base) {
        OpTrace ops;
        for (int i = 0; i < 16; ++i)
            ops.push_back(MicroOp{OpKind::Load,
                                  base + static_cast<Addr>(i) * 4096,
                                  invalidAddr, invalidAddr, 8, -1,
                                  AccessPhase::Payload});
        return ops;
    };
    const Cycles serial = throttled.run(missTrace(0x1000000)).elapsed();
    const Cycles parallel = free.run(missTrace(0x2000000)).elapsed();
    EXPECT_GT(serial, 2 * parallel);
}

TEST(CoreModel, StoresRetireFromStoreBuffer)
{
    MemoryHierarchy hier;
    CoreModel core(hier, 0);
    OpTrace ops;
    for (int i = 0; i < 32; ++i)
        ops.push_back(MicroOp{OpKind::Store,
                              0x400000 + static_cast<Addr>(i) * 64,
                              invalidAddr, invalidAddr, 8, -1,
                              AccessPhase::Payload});
    // Stores complete immediately; total is dispatch-bound.
    EXPECT_LE(core.run(ops).elapsed(), 32u);
}

TEST(CoreModel, RobLimitsRunahead)
{
    MemoryHierarchy hier;
    CoreConfig tiny;
    tiny.robEntries = 8;
    CoreModel small_rob(hier, 0, tiny);
    CoreModel big_rob(hier, 1);

    // A long-latency load followed by many ALU ops: a big ROB hides the
    // load under the ALU stream, a tiny one cannot.
    auto mixTrace = [](Addr a) {
        OpTrace ops;
        ops.push_back(MicroOp{OpKind::Load, a, invalidAddr, invalidAddr,
                              8, -1, AccessPhase::Payload});
        for (int i = 0; i < 200; ++i)
            ops.push_back(MicroOp{OpKind::Alu, invalidAddr, invalidAddr,
                                  invalidAddr, 8, -1,
                                  AccessPhase::Payload});
        return ops;
    };
    const Cycles slow = small_rob.run(mixTrace(0x3000000)).elapsed();
    const Cycles fast = big_rob.run(mixTrace(0x4000000)).elapsed();
    EXPECT_GT(slow, fast);
}

TEST(CoreModel, PhaseAttributionSumsToTotal)
{
    MemoryHierarchy hier;
    CoreModel core(hier, 0);
    TraceBuilder builder;
    OpTrace ops;
    builder.lowerCompute(20, 10, 8, ops);
    builder.lowerLoad(0x500000, 16, AccessPhase::Bucket, ops);
    const RunResult r = core.run(ops);
    Cycles sum = r.computeCycles;
    for (Cycles c : r.phaseCycles)
        sum += c;
    EXPECT_EQ(sum, r.elapsed());
}

TEST(CoreModel, LookupWithoutEnginePanics)
{
    MemoryHierarchy hier;
    CoreModel core(hier, 0);
    OpTrace ops;
    ops.push_back(MicroOp{OpKind::LookupB, 0x100, 0x200, invalidAddr, 8,
                          -1, AccessPhase::Bucket});
    EXPECT_THROW(core.run(ops), PanicError);
}

} // namespace
} // namespace halo
