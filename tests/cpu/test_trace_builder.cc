/**
 * @file
 * Unit tests for micro-op lowering, including the Table-1 calibration.
 */

#include <gtest/gtest.h>

#include "cpu/trace_builder.hh"
#include "hash/cuckoo_table.hh"

namespace halo {
namespace {

AccessTrace
hitLookupRefs()
{
    SimMemory mem(32 << 20);
    CuckooHashTable t(mem, {16, 4096, HashKind::XxMix, 1, 0.95});
    std::uint8_t key[16] = {1, 2, 3, 4, 5};
    t.insert(KeyView(key, 16), 42);
    AccessTrace refs;
    EXPECT_TRUE(t.lookup(KeyView(key, 16), &refs).has_value());
    return refs;
}

TEST(TraceBuilder, Table1InstructionCount)
{
    TraceBuilder builder;
    OpTrace ops;
    builder.lowerTableOp(hitLookupRefs(), ops);
    // Paper Table 1: ~210 instructions per lookup.
    EXPECT_GE(ops.size(), 195u);
    EXPECT_LE(ops.size(), 225u);
}

TEST(TraceBuilder, Table1InstructionMix)
{
    TraceBuilder builder;
    OpTrace ops;
    builder.lowerTableOp(hitLookupRefs(), ops);
    const OpMix mix = mixOf(ops);
    const double total = static_cast<double>(mix.total());
    // Paper Table 1: 36.2% loads, 11.8% stores, 21.0% arith, 30.9%
    // others. Allow a few percent of slack for the real refs.
    EXPECT_NEAR(static_cast<double>(mix.loads) / total, 0.362, 0.05);
    EXPECT_NEAR(static_cast<double>(mix.stores) / total, 0.118, 0.04);
    EXPECT_NEAR(static_cast<double>(mix.arith) / total, 0.210, 0.05);
    EXPECT_NEAR(static_cast<double>(mix.others) / total, 0.309, 0.05);
}

TEST(TraceBuilder, MemoryOpsKeepRealAddresses)
{
    TraceBuilder builder;
    const AccessTrace refs = hitLookupRefs();
    OpTrace ops;
    builder.lowerTableOp(refs, ops);
    // Every bucket/kv reference address must appear in the ops.
    for (const MemRef &ref : refs) {
        if (ref.phase != AccessPhase::Bucket &&
            ref.phase != AccessPhase::KeyValue)
            continue;
        bool found = false;
        for (const MicroOp &op : ops)
            found |= op.addr == ref.addr;
        EXPECT_TRUE(found) << "missing ref to " << ref.addr;
    }
}

TEST(TraceBuilder, DependenciesPointBackward)
{
    TraceBuilder builder;
    OpTrace ops;
    builder.lowerTableOp(hitLookupRefs(), ops);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].dep >= 0)
            EXPECT_LT(static_cast<std::size_t>(ops[i].dep), i);
    }
}

TEST(TraceBuilder, BucketLoadDependsOnHashChain)
{
    TraceBuilder builder;
    const AccessTrace refs = hitLookupRefs();
    OpTrace ops;
    builder.lowerTableOp(refs, ops);
    // Find the first bucket load; its dep must be an Alu op (the hash).
    for (const MicroOp &op : ops) {
        if (op.kind == OpKind::Load &&
            op.phase == AccessPhase::Bucket) {
            ASSERT_GE(op.dep, 0);
            EXPECT_EQ(ops[op.dep].kind, OpKind::Alu);
            break;
        }
    }
}

TEST(TraceBuilder, InsertTraceLargerThanLookup)
{
    SimMemory mem(32 << 20);
    CuckooHashTable t(mem, {16, 4096, HashKind::XxMix, 2, 0.95});
    std::uint8_t key[16] = {9};
    AccessTrace insert_refs;
    t.insert(KeyView(key, 16), 1, &insert_refs);

    TraceBuilder builder;
    OpTrace lookup_ops, insert_ops;
    builder.lowerTableOp(hitLookupRefs(), lookup_ops);
    builder.lowerTableOp(insert_refs, insert_ops);
    EXPECT_GT(insert_ops.size(), lookup_ops.size());
}

TEST(TraceBuilder, LookupInstructionsAreTiny)
{
    TraceBuilder builder;
    OpTrace ops;
    builder.lowerLookupB(0x1000, 0x2000, ops);
    // The whole point of the ISA extension: single-digit op counts
    // instead of ~210 (paper SS4.5).
    EXPECT_LE(ops.size(), 3u);
    EXPECT_EQ(ops.back().kind, OpKind::LookupB);
    EXPECT_EQ(ops.back().tableAddr, 0x1000u);
    EXPECT_EQ(ops.back().addr, 0x2000u);

    OpTrace nb;
    builder.lowerLookupNB(0x1000, 0x2000, 0x3000, nb);
    EXPECT_LE(nb.size(), 3u);
    EXPECT_EQ(nb.back().kind, OpKind::LookupNB);
    EXPECT_EQ(nb.back().resultAddr, 0x3000u);
}

TEST(TraceBuilder, SnapshotCheckShape)
{
    TraceBuilder builder;
    OpTrace ops;
    builder.lowerSnapshotCheck(0x4000, ops);
    EXPECT_EQ(ops.front().kind, OpKind::SnapshotRead);
    EXPECT_EQ(ops.front().size, cacheLineBytes);
    // The AVX compare depends on the snapshot data.
    EXPECT_EQ(ops[1].dep, 0);
}

TEST(TraceBuilder, LowerComputeProducesRequestedCounts)
{
    TraceBuilder builder;
    OpTrace ops;
    builder.lowerCompute(10, 8, 6, ops);
    const OpMix mix = mixOf(ops);
    EXPECT_EQ(mix.arith, 10u);
    EXPECT_EQ(mix.others, 8u);
    EXPECT_EQ(mix.loads + mix.stores, 6u);
}

} // namespace
} // namespace halo
