/**
 * @file
 * Unit tests for headers, packets, masks, and the traffic generator.
 */

#include <gtest/gtest.h>

#include <set>

#include "net/traffic_gen.hh"

namespace halo {
namespace {

TEST(Headers, EthernetRoundTrip)
{
    EthernetHeader h;
    h.srcMac = {1, 2, 3, 4, 5, 6};
    h.dstMac = {7, 8, 9, 10, 11, 12};
    h.etherType = 0x0800;
    std::uint8_t wire[EthernetHeader::wireBytes];
    h.serialize(wire);
    const EthernetHeader back = EthernetHeader::parse(wire);
    EXPECT_EQ(back.srcMac, h.srcMac);
    EXPECT_EQ(back.dstMac, h.dstMac);
    EXPECT_EQ(back.etherType, 0x0800);
}

TEST(Headers, Ipv4RoundTripAndChecksum)
{
    Ipv4Header h;
    h.srcIp = 0x0a010203;
    h.dstIp = 0x0a040506;
    h.protocol = 17;
    h.ttl = 61;
    std::uint8_t wire[Ipv4Header::wireBytes];
    h.serialize(wire);
    // A serialized header checksums to zero.
    EXPECT_EQ(Ipv4Header::checksum(wire, sizeof(wire)), 0);
    const Ipv4Header back = Ipv4Header::parse(wire);
    EXPECT_EQ(back.srcIp, h.srcIp);
    EXPECT_EQ(back.dstIp, h.dstIp);
    EXPECT_EQ(back.protocol, 17);
    EXPECT_EQ(back.ttl, 61);
}

TEST(Headers, TcpUdpRoundTrip)
{
    UdpHeader u;
    u.srcPort = 1234;
    u.dstPort = 80;
    std::uint8_t uw[UdpHeader::wireBytes];
    u.serialize(uw);
    EXPECT_EQ(UdpHeader::parse(uw).srcPort, 1234);
    EXPECT_EQ(UdpHeader::parse(uw).dstPort, 80);

    TcpHeader t;
    t.srcPort = 4321;
    t.dstPort = 443;
    t.seq = 0xdeadbeef;
    t.flags = 0x12;
    std::uint8_t tw[TcpHeader::wireBytes];
    t.serialize(tw);
    EXPECT_EQ(TcpHeader::parse(tw).seq, 0xdeadbeefu);
    EXPECT_EQ(TcpHeader::parse(tw).flags, 0x12);
}

TEST(FiveTuple, KeyRoundTrip)
{
    FiveTuple t;
    t.srcIp = 0x01020304;
    t.dstIp = 0x05060708;
    t.srcPort = 1111;
    t.dstPort = 2222;
    t.proto = 6;
    const auto key = t.toKey();
    EXPECT_EQ(FiveTuple::fromKey(key), t);
}

TEST(FlowMask, ExactMatchesOnlyIdentical)
{
    const FlowMask exact = FlowMask::exact();
    FiveTuple a, b;
    a.srcIp = 0x0a000001;
    b = a;
    EXPECT_EQ(exact.apply(a.toKey()), exact.apply(b.toKey()));
    b.dstPort = 99;
    EXPECT_NE(exact.apply(a.toKey()), exact.apply(b.toKey()));
}

TEST(FlowMask, PrefixWildcarding)
{
    const FlowMask m = FlowMask::fields(24, 0, false, false, false);
    FiveTuple a, b;
    a.srcIp = 0x0a0b0c01;
    b.srcIp = 0x0a0b0cff; // same /24
    b.dstIp = 0x12345678; // ignored
    b.srcPort = 999;      // ignored
    EXPECT_EQ(m.apply(a.toKey()), m.apply(b.toKey()));
    b.srcIp = 0x0a0b0d01; // different /24
    EXPECT_NE(m.apply(a.toKey()), m.apply(b.toKey()));
}

TEST(FlowMask, WildcardBitsOrdering)
{
    EXPECT_LT(FlowMask::exact().wildcardBits(),
              FlowMask::fields(24, 24, true, true, true).wildcardBits());
    EXPECT_LT(FlowMask::fields(24, 24, true, true, true).wildcardBits(),
              FlowMask::fields(8, 0, false, false, false).wildcardBits());
}

TEST(Packet, BuildAndParse)
{
    FiveTuple t;
    t.srcIp = 0x0a000001;
    t.dstIp = 0x0a000002;
    t.srcPort = 5555;
    t.dstPort = 53;
    t.proto = static_cast<std::uint8_t>(IpProto::Udp);
    const Packet pkt = Packet::fromTuple(t);
    EXPECT_GE(pkt.bytes().size(), 60u); // min frame
    const auto parsed = pkt.parseHeaders();
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->l4Valid);
    EXPECT_EQ(parsed->tuple(), t);
}

TEST(Packet, TcpPacketsParseToo)
{
    FiveTuple t;
    t.srcIp = 1;
    t.dstIp = 2;
    t.srcPort = 3;
    t.dstPort = 4;
    t.proto = static_cast<std::uint8_t>(IpProto::Tcp);
    const auto parsed = Packet::fromTuple(t).parseHeaders();
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->tuple(), t);
}

TEST(Packet, RuntIsRejected)
{
    Packet p;
    p.bytes().assign(10, 0);
    EXPECT_FALSE(p.parseHeaders().has_value());
}

TEST(TrafficGen, GeneratesDistinctFlows)
{
    TrafficConfig cfg;
    cfg.numFlows = 5000;
    TrafficGenerator gen(cfg);
    EXPECT_EQ(gen.flows().size(), 5000u);
    std::set<std::array<std::uint8_t, FiveTuple::keyBytes>> keys;
    for (const FiveTuple &t : gen.flows())
        keys.insert(t.toKey());
    EXPECT_EQ(keys.size(), 5000u);
}

TEST(TrafficGen, DeterministicUnderSeed)
{
    TrafficConfig cfg;
    cfg.numFlows = 100;
    cfg.seed = 77;
    TrafficGenerator a(cfg), b(cfg);
    for (int i = 0; i < 500; ++i)
        ASSERT_EQ(a.nextTuple(), b.nextTuple());
}

TEST(TrafficGen, ZipfSkewConcentratesTraffic)
{
    TrafficConfig cfg = TrafficGenerator::scenarioConfig(
        TrafficScenario::ManyFlows, 10000);
    EXPECT_GT(cfg.zipfSkew, 0.0);
    TrafficGenerator gen(cfg);
    std::map<std::uint32_t, unsigned> hits;
    for (int i = 0; i < 20000; ++i)
        ++hits[gen.nextTuple().srcIp];
    // Skewed draws revisit hot flows more than uniform sampling would.
    EXPECT_LT(hits.size(), 8646u - 500u); // uniform expectation ~8646
}

TEST(TrafficGen, UniformCoversPopulation)
{
    TrafficConfig cfg;
    cfg.numFlows = 50;
    TrafficGenerator gen(cfg);
    std::set<std::uint16_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(gen.nextTuple().srcPort);
    EXPECT_GT(seen.size(), 40u);
}

} // namespace
} // namespace halo
