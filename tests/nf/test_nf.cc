/**
 * @file
 * Unit tests for the modeled network functions.
 */

#include <gtest/gtest.h>

#include "core/halo_system.hh"
#include "cpu/core_model.hh"
#include "nf/acl.hh"
#include "nf/mtcp_lite.hh"
#include "nf/nat.hh"
#include "nf/packet_filter.hh"
#include "nf/prads.hh"
#include "nf/snort_lite.hh"

namespace halo {
namespace {

struct NfRig
{
    SimMemory mem{512ull << 20};
    MemoryHierarchy hier;
    HaloSystem halo{mem, hier};
    CoreModel core{hier, 0};

    NfRig() { core.setLookupEngine(&halo); }

    static ParsedHeaders
    headersFor(const FiveTuple &t)
    {
        return *Packet::fromTuple(t).parseHeaders();
    }

    static FiveTuple
    tuple(std::uint32_t i, IpProto proto = IpProto::Udp)
    {
        FiveTuple t;
        t.srcIp = 0x0a000000 + i;
        t.dstIp = 0x0a100000 + i * 7;
        t.srcPort = static_cast<std::uint16_t>(1024 + (i % 60000));
        t.dstPort = 80;
        t.proto = static_cast<std::uint8_t>(proto);
        return t;
    }
};

TEST(Nat, AllocatesThenTranslates)
{
    NfRig rig;
    NatFunction nat(rig.mem, rig.hier, {1000, NfEngine::Software,
                                        0xc6336401});
    OpTrace ops;
    const auto t = NfRig::tuple(1);
    nat.process(NfRig::headersFor(t), Packet::fromTuple(t), ops);
    EXPECT_EQ(nat.bindingsAllocated(), 1u);
    EXPECT_EQ(nat.translationHits(), 0u);
    nat.process(NfRig::headersFor(t), Packet::fromTuple(t), ops);
    EXPECT_EQ(nat.translationHits(), 1u);
    EXPECT_EQ(nat.bindingsAllocated(), 1u);
}

TEST(Nat, DistinctFlowsGetDistinctBindings)
{
    NfRig rig;
    NatFunction nat(rig.mem, rig.hier, {1000, NfEngine::Software,
                                        0xc6336401});
    OpTrace ops;
    for (std::uint32_t i = 0; i < 100; ++i) {
        const auto t = NfRig::tuple(i);
        nat.process(NfRig::headersFor(t), Packet::fromTuple(t), ops);
    }
    EXPECT_EQ(nat.bindingsAllocated(), 100u);
    EXPECT_EQ(nat.translationTable().size(), 100u);
}

TEST(Nat, HaloEngineProducesSameFunctionalState)
{
    NfRig rig;
    NatFunction sw(rig.mem, rig.hier, {1000, NfEngine::Software,
                                       0xc6336401});
    NatFunction hw(rig.mem, rig.hier, {1000, NfEngine::Halo,
                                       0xc6336401});
    for (std::uint32_t i = 0; i < 50; ++i) {
        const auto t = NfRig::tuple(i % 10);
        OpTrace a, b;
        sw.process(NfRig::headersFor(t), Packet::fromTuple(t), a);
        hw.process(NfRig::headersFor(t), Packet::fromTuple(t), b);
        // The HALO trace is dominated by the single LOOKUP_B.
        EXPECT_LT(b.size(), a.size());
    }
    EXPECT_EQ(sw.translationHits(), hw.translationHits());
    EXPECT_EQ(sw.bindingsAllocated(), hw.bindingsAllocated());
}

TEST(Filter, DropsExactlyTheRuledFlows)
{
    NfRig rig;
    PacketFilter filter(rig.mem, rig.hier,
                        {100, NfEngine::Software, 1});
    filter.addRule(NfRig::tuple(1));
    filter.addRule(NfRig::tuple(3));
    OpTrace ops;
    for (std::uint32_t i = 0; i < 6; ++i) {
        const auto t = NfRig::tuple(i);
        filter.process(NfRig::headersFor(t), Packet::fromTuple(t), ops);
    }
    EXPECT_EQ(filter.dropped(), 2u);
    EXPECT_EQ(filter.passed(), 4u);
}

TEST(Prads, DiscoversThenUpdates)
{
    NfRig rig;
    PradsLite prads(rig.mem, rig.hier, {1000, NfEngine::Software});
    OpTrace ops;
    const auto t = NfRig::tuple(5);
    prads.process(NfRig::headersFor(t), Packet::fromTuple(t), ops);
    prads.process(NfRig::headersFor(t), Packet::fromTuple(t), ops);
    prads.process(NfRig::headersFor(t), Packet::fromTuple(t), ops);
    EXPECT_EQ(prads.assetsDiscovered(), 1u);
    EXPECT_EQ(prads.sightingUpdates(), 2u);
}

TEST(Acl, MatchesPrefixAndQualifiers)
{
    NfRig rig;
    AclFunction acl(rig.mem, rig.hier);
    AclRule deny;
    deny.dstPrefix = 0x0a100000;
    deny.prefixLen = 16;
    deny.anyPort = true;
    deny.anyProto = true;
    deny.permit = false;
    deny.priority = 50;
    acl.addRule(deny);
    AclRule route;
    route.prefixLen = 0;
    route.permit = true;
    route.priority = 1;
    acl.addRule(route);
    acl.build();

    FiveTuple hit;
    hit.dstIp = 0x0a10beef;
    FiveTuple miss;
    miss.dstIp = 0x0b000001;
    const auto m1 = acl.match(hit);
    ASSERT_TRUE(m1.has_value());
    EXPECT_FALSE(m1->permit);
    const auto m2 = acl.match(miss);
    ASSERT_TRUE(m2.has_value());
    EXPECT_TRUE(m2->permit); // default route
}

TEST(Acl, PortQualifierFiltersCandidates)
{
    NfRig rig;
    AclFunction acl(rig.mem, rig.hier);
    AclRule deny80;
    deny80.dstPrefix = 0x0a000000;
    deny80.prefixLen = 8;
    deny80.anyPort = false;
    deny80.dstPort = 80;
    deny80.permit = false;
    deny80.priority = 10;
    acl.addRule(deny80);
    acl.build();

    FiveTuple web, dns;
    web.dstIp = dns.dstIp = 0x0a010101;
    web.dstPort = 80;
    dns.dstPort = 53;
    EXPECT_TRUE(acl.match(web).has_value());
    EXPECT_FALSE(acl.match(dns).has_value());
}

TEST(Acl, ProcessCountsVerdictsAndEmitsDependentWalk)
{
    NfRig rig;
    AclFunction acl(rig.mem, rig.hier);
    acl.populateFrom({NfRig::tuple(0), NfRig::tuple(1)}, 2, 42);
    acl.build();
    OpTrace ops;
    const auto t = NfRig::tuple(0);
    acl.process(NfRig::headersFor(t), Packet::fromTuple(t), ops);
    EXPECT_EQ(acl.permits() + acl.denies(), 1u);
    // The walk must contain chained loads (dep >= 0).
    bool chained = false;
    for (const MicroOp &op : ops)
        chained |= op.kind == OpKind::Load && op.dep >= 0;
    EXPECT_TRUE(chained);
}

TEST(Snort, FindsPlantedPatterns)
{
    NfRig rig;
    SnortLite snort(rig.mem, rig.hier);
    snort.addDefaultPatterns();
    snort.build();
    EXPECT_GT(snort.states(), 20u);

    const std::string payload = "GET /bin/sh?cmd=<script>alert</script>";
    const auto *bytes =
        reinterpret_cast<const std::uint8_t *>(payload.data());
    EXPECT_GE(snort.scan(std::span<const std::uint8_t>(
                  bytes, payload.size())),
              2u); // "/bin/sh" and "<script>"

    const std::string clean = "totally ordinary text";
    const auto *cbytes =
        reinterpret_cast<const std::uint8_t *>(clean.data());
    EXPECT_EQ(snort.scan(std::span<const std::uint8_t>(cbytes,
                                                       clean.size())),
              0u);
}

TEST(Snort, OverlappingPatternsAllCounted)
{
    NfRig rig;
    SnortLite snort(rig.mem, rig.hier);
    snort.addPattern("abab");
    snort.addPattern("bab");
    snort.build();
    const std::string s = "xababx";
    const auto *b = reinterpret_cast<const std::uint8_t *>(s.data());
    EXPECT_EQ(snort.scan(std::span<const std::uint8_t>(b, s.size())),
              2u);
}

TEST(Snort, ProcessScansPayload)
{
    NfRig rig;
    SnortLite snort(rig.mem, rig.hier);
    snort.addDefaultPatterns();
    snort.build();
    FiveTuple t = NfRig::tuple(1);
    Packet pkt = Packet::fromTuple(t, 32);
    // Plant a pattern in the payload.
    const std::string evil = "/bin/sh";
    std::copy(evil.begin(), evil.end(), pkt.bytes().end() - 20);
    OpTrace ops;
    snort.process(*pkt.parseHeaders(), pkt, ops);
    EXPECT_GE(snort.alerts(), 1u);
    EXPECT_GT(ops.size(), 50u); // per-byte automaton walk
}

TEST(Mtcp, ConnectionLifecycle)
{
    NfRig rig;
    MtcpLite mtcp(rig.mem, rig.hier, {1024, NfEngine::Software});
    FiveTuple t = NfRig::tuple(9, IpProto::Tcp);

    auto packetWithFlags = [&](std::uint8_t flags) {
        Packet pkt = Packet::fromTuple(t);
        TcpHeader tcp;
        tcp.srcPort = t.srcPort;
        tcp.dstPort = t.dstPort;
        tcp.flags = flags;
        tcp.serialize(pkt.bytes().data() + EthernetHeader::wireBytes +
                      Ipv4Header::wireBytes);
        return pkt;
    };

    OpTrace ops;
    // Data before SYN: ignored.
    Packet data = packetWithFlags(tcpAck);
    mtcp.process(*data.parseHeaders(), data, ops);
    EXPECT_EQ(mtcp.connectionsOpen(), 0u);
    // SYN opens.
    Packet syn = packetWithFlags(tcpSyn);
    mtcp.process(*syn.parseHeaders(), syn, ops);
    EXPECT_EQ(mtcp.connectionsOpen(), 1u);
    EXPECT_EQ(mtcp.connectionsAccepted(), 1u);
    // Data flows.
    mtcp.process(*data.parseHeaders(), data, ops);
    mtcp.process(*data.parseHeaders(), data, ops);
    // FIN closes.
    Packet fin = packetWithFlags(tcpFin | tcpAck);
    mtcp.process(*fin.parseHeaders(), fin, ops);
    EXPECT_EQ(mtcp.connectionsOpen(), 0u);
    EXPECT_EQ(mtcp.connectionsClosed(), 1u);
}

TEST(Mtcp, NonTcpTrafficIgnored)
{
    NfRig rig;
    MtcpLite mtcp(rig.mem, rig.hier, {1024, NfEngine::Software});
    FiveTuple t = NfRig::tuple(2, IpProto::Udp);
    Packet pkt = Packet::fromTuple(t);
    OpTrace ops;
    mtcp.process(*pkt.parseHeaders(), pkt, ops);
    EXPECT_EQ(mtcp.connectionsOpen(), 0u);
    EXPECT_TRUE(ops.empty());
}

TEST(AllNfs, FootprintsAndWarmup)
{
    NfRig rig;
    NatFunction nat(rig.mem, rig.hier, {1000, NfEngine::Software, 1});
    PacketFilter filter(rig.mem, rig.hier, {100, NfEngine::Software, 2});
    PradsLite prads(rig.mem, rig.hier, {1000, NfEngine::Software});
    MtcpLite mtcp(rig.mem, rig.hier, {1024, NfEngine::Software});
    AclFunction acl(rig.mem, rig.hier);
    acl.populateFrom({NfRig::tuple(0)}, 1, 1);
    acl.build();
    SnortLite snort(rig.mem, rig.hier);
    snort.addDefaultPatterns();
    snort.build();

    for (NetworkFunction *nf :
         std::initializer_list<NetworkFunction *>{
             &nat, &filter, &prads, &mtcp, &acl, &snort}) {
        EXPECT_GT(nf->footprintBytes(), 0u) << nf->name();
        nf->warm(); // must not throw
    }
}

} // namespace
} // namespace halo
