/**
 * @file
 * Unit tests for the TCAM/SRAM-TCAM models and the power/area models
 * (paper Table 4).
 */

#include <gtest/gtest.h>

#include "power/power_model.hh"
#include "tcam/tcam.hh"

namespace halo {
namespace {

FlowRule
ruleFor(std::uint32_t dst_ip, unsigned prefix, std::uint16_t priority,
        std::uint16_t port)
{
    FlowRule r;
    r.mask = FlowMask::fields(0, prefix, false, false, false);
    FiveTuple t;
    t.dstIp = dst_ip;
    r.maskedKey = r.mask.apply(t.toKey());
    r.priority = priority;
    r.action = {ActionKind::Forward, port};
    return r;
}

TEST(Tcam, HighestPriorityWins)
{
    TcamModel tcam(TcamConfig{});
    tcam.addRule(ruleFor(0x0a0b0c0d, 32, 10, 1));
    tcam.addRule(ruleFor(0x0a0b0c00, 24, 50, 2));
    FiveTuple t;
    t.dstIp = 0x0a0b0c0d;
    const auto m = tcam.lookup(t.toKey());
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->action.port, 2); // priority 50 beats 10
}

TEST(Tcam, WildcardMatching)
{
    TcamModel tcam(TcamConfig{});
    tcam.addRule(ruleFor(0x0a0b0000, 16, 5, 9));
    FiveTuple in_net, out_net;
    in_net.dstIp = 0x0a0bffee;
    out_net.dstIp = 0x0a0cffee;
    EXPECT_TRUE(tcam.lookup(in_net.toKey()).has_value());
    EXPECT_FALSE(tcam.lookup(out_net.toKey()).has_value());
}

TEST(Tcam, CapacityIsEnforced)
{
    TcamConfig cfg;
    cfg.capacityBytes = 13 * 4; // four entries
    TcamModel tcam(cfg);
    EXPECT_EQ(tcam.capacityEntries(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_TRUE(tcam.addRule(ruleFor(i << 8, 24, i, 0)));
    EXPECT_FALSE(tcam.addRule(ruleFor(99 << 8, 24, 99, 0)));
}

TEST(Tcam, UpdatesShiftEntries)
{
    TcamModel tcam(TcamConfig{});
    // Inserting in ascending priority forces shifting every time.
    for (unsigned i = 0; i < 16; ++i)
        tcam.addRule(ruleFor(i << 8, 24, static_cast<std::uint16_t>(i),
                             0));
    EXPECT_GT(tcam.entriesShifted(), 50u);
}

TEST(Tcam, RemoveRule)
{
    TcamModel tcam(TcamConfig{});
    tcam.addRule(ruleFor(0x01000000, 8, 10, 1));
    FiveTuple t;
    t.dstIp = 0x01020304;
    ASSERT_TRUE(tcam.lookup(t.toKey()).has_value());
    tcam.removeRule(tcam.lookup(t.toKey())->index);
    EXPECT_FALSE(tcam.lookup(t.toKey()).has_value());
}

TEST(Tcam, ConstantSearchLatency)
{
    TcamModel tcam(TcamConfig{});
    EXPECT_EQ(tcam.searchLatency(), 4u);
    SramTcam sram(SramTcam::Config{});
    EXPECT_GT(sram.searchLatency(), tcam.searchLatency());
}

TEST(SramTcam, FunctionalParityWithTcam)
{
    TcamModel tcam(TcamConfig{});
    SramTcam sram(SramTcam::Config{});
    for (unsigned i = 0; i < 32; ++i) {
        const FlowRule r = ruleFor(i << 16, 16,
                                   static_cast<std::uint16_t>(i), 3);
        tcam.addRule(r);
        sram.addRule(r);
    }
    for (unsigned i = 0; i < 32; ++i) {
        FiveTuple t;
        t.dstIp = (i << 16) | 0x1234;
        const auto a = tcam.lookup(t.toKey());
        const auto b = sram.lookup(t.toKey());
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a)
            EXPECT_EQ(a->action.port, b->action.port);
    }
}

TEST(Power, Table4CalibrationPointsExact)
{
    // The model must reproduce the paper's Table 4 rows exactly at the
    // calibration capacities.
    const PowerArea kb1 = tcamPowerArea(1 << 10);
    EXPECT_NEAR(kb1.areaTiles, 0.001, 1e-9);
    EXPECT_NEAR(kb1.staticMw, 71.1, 1e-6);
    EXPECT_NEAR(kb1.dynamicNjPerQuery, 0.04, 1e-9);

    const PowerArea mb1 = tcamPowerArea(1 << 20);
    EXPECT_NEAR(mb1.areaTiles, 9.343, 1e-6);
    EXPECT_NEAR(mb1.staticMw, 26733.1, 1e-3);
    EXPECT_NEAR(mb1.dynamicNjPerQuery, 84.82, 1e-6);
}

TEST(Power, TcamScalesMonotonically)
{
    double prev_area = 0, prev_power = 0;
    for (std::uint64_t cap = 1 << 10; cap <= (4u << 20); cap *= 2) {
        const PowerArea pa = tcamPowerArea(cap);
        EXPECT_GT(pa.areaTiles, prev_area);
        EXPECT_GT(pa.staticMw, prev_power);
        prev_area = pa.areaTiles;
        prev_power = pa.staticMw;
    }
}

TEST(Power, SramTcamCheaperThanTcam)
{
    for (std::uint64_t cap : {1u << 12, 1u << 16, 1u << 20}) {
        const PowerArea t = tcamPowerArea(cap);
        const PowerArea s = sramTcamPowerArea(cap);
        EXPECT_NEAR(s.areaTiles, t.areaTiles * 0.43, 1e-9);
        EXPECT_NEAR(s.staticMw, t.staticMw * 0.55, 1e-6);
        EXPECT_LT(s.dynamicNjPerQuery, t.dynamicNjPerQuery);
    }
}

TEST(Power, HaloHeadlineNumbers)
{
    const PowerArea halo = haloAcceleratorPowerArea();
    EXPECT_NEAR(halo.areaTiles, 0.012, 1e-9);
    EXPECT_NEAR(halo.staticMw, 97.2, 1e-6);
    EXPECT_NEAR(halo.dynamicNjPerQuery, 1.76, 1e-9);

    // The paper's 48.2x energy-efficiency headline vs the 1 MB TCAM.
    const double ratio =
        dynamicEfficiencyRatio(tcamPowerArea(1 << 20), halo);
    EXPECT_NEAR(ratio, 48.2, 0.3);
}

TEST(Power, ComplexScalesWithAccelerators)
{
    const PowerArea one = haloAcceleratorPowerArea();
    const PowerArea sixteen = haloComplexPowerArea(16);
    EXPECT_NEAR(sixteen.areaTiles, one.areaTiles * 16, 1e-9);
    EXPECT_NEAR(sixteen.staticMw, one.staticMw * 16, 1e-6);
    // Dynamic energy is per query, not per accelerator.
    EXPECT_NEAR(sixteen.dynamicNjPerQuery, one.dynamicNjPerQuery, 1e-9);
}

TEST(Power, EnergyPerQueryIncludesLeakage)
{
    const PowerArea halo = haloAcceleratorPowerArea();
    const double at_1mqps = energyPerQueryNj(halo, 1e6);
    const double at_100mqps = energyPerQueryNj(halo, 1e8);
    EXPECT_GT(at_1mqps, at_100mqps);
    EXPECT_GT(at_100mqps, halo.dynamicNjPerQuery);
}

} // namespace
} // namespace halo
