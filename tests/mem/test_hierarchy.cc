/**
 * @file
 * Unit and calibration tests for the full memory hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace halo {
namespace {

TEST(Hierarchy, L1HitAfterFirstAccess)
{
    MemoryHierarchy h;
    const AccessResult miss = h.coreAccess(0, 0x10000, false);
    EXPECT_EQ(miss.level, MemLevel::DRAM);
    const AccessResult hit = h.coreAccess(0, 0x10000, false);
    EXPECT_EQ(hit.level, MemLevel::L1);
    EXPECT_EQ(hit.latency, h.config().l1Latency);
}

TEST(Hierarchy, LevelsAreProgressivelySlower)
{
    MemoryHierarchy h;
    const Cycles l1 = h.config().l1Latency;
    h.coreAccess(0, 0x20000, false); // DRAM fill
    const Cycles dram =
        h.coreAccess(0, 0x30000, false).latency; // fresh DRAM
    const Cycles l1_hit = h.coreAccess(0, 0x20000, false).latency;
    EXPECT_EQ(l1_hit, l1);
    EXPECT_GT(dram, 150u);
}

TEST(Hierarchy, LlcHitAfterWarm)
{
    MemoryHierarchy h;
    h.warmLine(0x40000);
    const AccessResult r = h.coreAccess(0, 0x40000, false);
    EXPECT_EQ(r.level, MemLevel::LLC);
    EXPECT_GT(r.latency, h.config().l2Latency);
    EXPECT_LT(r.latency, 150u);
}

TEST(Hierarchy, SliceHashIsStableAndUniform)
{
    MemoryHierarchy h;
    std::vector<unsigned> counts(h.config().llcSlices, 0);
    for (Addr a = 0; a < 16384; ++a) {
        const SliceId s = h.sliceOf(a * cacheLineBytes);
        ASSERT_LT(s, h.config().llcSlices);
        ASSERT_EQ(s, h.sliceOf(a * cacheLineBytes + 13));
        ++counts[s];
    }
    for (unsigned c : counts) {
        EXPECT_GT(c, 16384u / 16 / 2);
        EXPECT_LT(c, 16384u / 16 * 2);
    }
}

TEST(Hierarchy, RemoteDirtyLineForwarded)
{
    MemoryHierarchy h;
    h.coreAccess(0, 0x50000, true); // core 0 dirties the line
    const AccessResult r = h.coreAccess(1, 0x50000, false);
    EXPECT_EQ(r.level, MemLevel::RemoteCache);
    EXPECT_GT(r.latency, h.config().remoteSnoopPenalty);
    // Core 0 lost its copy (MSI-style invalidate-on-forward).
    EXPECT_FALSE(h.l1(0).contains(0x50000));
}

TEST(Hierarchy, InclusionBackInvalidatesPrivateCaches)
{
    HierarchyConfig cfg;
    cfg.llcSlices = 1;
    cfg.llcSliceBytes = 4096; // tiny LLC: 64 lines, 16-way, 4 sets
    cfg.cores = 1;
    MemoryHierarchy h(cfg);
    h.coreAccess(0, 0, false);
    EXPECT_TRUE(h.l1(0).contains(0));
    // Evict line 0 from the LLC by filling its set.
    for (Addr i = 1; i <= 16; ++i)
        h.coreAccess(0, i * 4 * 64 * 4, false);
    // The LLC eviction must have purged L1/L2 too (inclusion);
    // line 0 may or may not be evicted depending on set mapping, so
    // check the invariant for every line: present in L1 => present in
    // LLC.
    for (Addr i = 0; i <= 16; ++i) {
        const Addr a = i * 4 * 64 * 4;
        if (h.l1(0).contains(a))
            EXPECT_TRUE(h.llcSlice(h.sliceOf(a)).contains(a));
    }
    EXPECT_GT(h.stats().counterValue("back_invalidations"), 0u);
}

TEST(Hierarchy, ChaAccessFasterThanCoreAccess)
{
    MemoryHierarchy h;
    // Warm a set of lines into the LLC, then compare average access
    // latency from a core against a CHA (paper Fig. 10: ~4.1x).
    std::uint64_t core_total = 0, cha_total = 0;
    const unsigned n = 512;
    for (unsigned i = 0; i < n; ++i) {
        const Addr a = 0x100000 + static_cast<Addr>(i) * 64;
        h.warmLine(a);
        cha_total += h.chaAccess(i % 16, a, false).latency;
    }
    h.flushAll();
    for (unsigned i = 0; i < n; ++i) {
        const Addr a = 0x100000 + static_cast<Addr>(i) * 64;
        h.warmLine(a);
        core_total += h.coreAccess(0, a, false).latency;
        h.l1(0).invalidate(a);
        h.l2(0).invalidate(a);
    }
    const double ratio = static_cast<double>(core_total) /
                         static_cast<double>(cha_total);
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 5.5);
}

TEST(Hierarchy, ChaDramAccessFasterThanCoreDramAccess)
{
    MemoryHierarchy h;
    std::uint64_t core_total = 0, cha_total = 0;
    const unsigned n = 256;
    for (unsigned i = 0; i < n; ++i) {
        const Addr a = 0x4000000 + static_cast<Addr>(i) * 8192;
        core_total += h.coreAccess(0, a, false).latency;
    }
    for (unsigned i = 0; i < n; ++i) {
        const Addr a = 0x8000000 + static_cast<Addr>(i) * 8192;
        cha_total += h.chaAccess(i % 16, a, false).latency;
    }
    const double ratio = static_cast<double>(core_total) /
                         static_cast<double>(cha_total);
    EXPECT_GT(ratio, 1.3); // paper reports 1.6x
    EXPECT_LT(ratio, 2.2);
}

TEST(Hierarchy, LockBlocksWritesWithPenalty)
{
    MemoryHierarchy h;
    h.warmLine(0x60000);
    EXPECT_TRUE(h.lockLine(0, 0x60000));
    EXPECT_TRUE(h.isLineLocked(0x60000));
    // Locking an already-locked line fails.
    EXPECT_FALSE(h.lockLine(1, 0x60000));

    const Cycles locked_write = h.coreAccess(0, 0x60000, true).latency;
    h.flushAll();
    h.warmLine(0x60000);
    const Cycles unlocked_write =
        h.coreAccess(0, 0x60000, true).latency;
    EXPECT_EQ(locked_write,
              unlocked_write + h.config().lockRetryPenalty);
    EXPECT_EQ(h.stats().counterValue("lock_retries"), 1u);

    h.unlockLine(0x60000);
    EXPECT_FALSE(h.isLineLocked(0x60000));
}

TEST(Hierarchy, LockLineFillsAbsentLine)
{
    MemoryHierarchy h;
    EXPECT_FALSE(h.llcSlice(h.sliceOf(0x70000)).contains(0x70000));
    EXPECT_TRUE(h.lockLine(0, 0x70000));
    EXPECT_TRUE(h.llcSlice(h.sliceOf(0x70000)).contains(0x70000));
    h.unlockLine(0x70000);
}

TEST(Hierarchy, MeshHopsAreSymmetricAndBounded)
{
    MemoryHierarchy h;
    for (unsigned a = 0; a < 16; ++a) {
        for (unsigned b = 0; b < 16; ++b) {
            EXPECT_EQ(h.sliceSliceHops(a, b), h.sliceSliceHops(b, a));
            EXPECT_LE(h.sliceSliceHops(a, b), 6u); // 4x4 mesh diameter
        }
        EXPECT_EQ(h.sliceSliceHops(a, a), 0u);
    }
}

TEST(Hierarchy, ChaAccessSnoopsDirtyPrivateCopies)
{
    MemoryHierarchy h;
    h.coreAccess(3, 0x90000, true); // dirty in core 3's L1
    const AccessResult r = h.chaAccess(0, 0x90000, false);
    EXPECT_EQ(r.level, MemLevel::RemoteCache);
    EXPECT_FALSE(h.l1(3).contains(0x90000));
}

} // namespace
} // namespace halo
