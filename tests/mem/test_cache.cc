/**
 * @file
 * Unit tests for the set-associative cache model and the DRAM model.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"

namespace halo {
namespace {

Cache
smallCache()
{
    // 4 KiB, 4-way, 16 sets.
    return Cache("test", 4096, 4, 3);
}

TEST(Cache, MissThenHit)
{
    Cache c = smallCache();
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1038, false).hit); // same line
    EXPECT_EQ(c.stats().counterValue("hits"), 2u);
    EXPECT_EQ(c.stats().counterValue("misses"), 1u);
}

TEST(Cache, LruEviction)
{
    Cache c = smallCache(); // 16 sets * 64B stride
    // Fill one set (4 ways): lines mapping to set 0 are 64*16 apart.
    const Addr stride = 64 * 16;
    for (Addr i = 0; i < 4; ++i)
        c.access(i * stride, false);
    // Touch line 0 so line 1 becomes LRU.
    c.access(0, false);
    // A 5th line evicts line 1 (the LRU), not line 0.
    c.access(4 * stride, false);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(stride));
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    Cache c = smallCache();
    const Addr stride = 64 * 16;
    c.access(0, true); // dirty
    for (Addr i = 1; i <= 4; ++i)
        c.access(i * stride, false);
    EXPECT_FALSE(c.contains(0));
    EXPECT_EQ(c.stats().counterValue("writebacks"), 1u);
}

TEST(Cache, InvalidateReportsDirty)
{
    Cache c = smallCache();
    c.access(0x40, true);
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_FALSE(c.contains(0x40));
    c.access(0x80, false);
    EXPECT_FALSE(c.invalidate(0x80)); // clean
    EXPECT_FALSE(c.invalidate(0xc0)); // absent
}

TEST(Cache, LockBitPinsLine)
{
    Cache c = smallCache();
    const Addr stride = 64 * 16;
    c.access(0, false);
    EXPECT_TRUE(c.setLockBit(0, true));
    EXPECT_TRUE(c.lockBit(0));
    // Fill the set; the locked line must survive.
    for (Addr i = 1; i <= 6; ++i)
        c.access(i * stride, false);
    EXPECT_TRUE(c.contains(0));
    c.setLockBit(0, false);
    EXPECT_FALSE(c.lockBit(0));
}

TEST(Cache, LockBitOnAbsentLineFails)
{
    Cache c = smallCache();
    EXPECT_FALSE(c.setLockBit(0x5000, true));
    EXPECT_FALSE(c.lockBit(0x5000));
}

TEST(Cache, ProbeOnlyDoesNotAllocate)
{
    Cache c = smallCache();
    EXPECT_FALSE(c.access(0x2000, false, /*allocate=*/false).hit);
    EXPECT_FALSE(c.contains(0x2000));
}

TEST(Cache, FlushAllEmptiesCache)
{
    Cache c = smallCache();
    c.access(0x40, true);
    c.access(0x80, false);
    EXPECT_EQ(c.validLines(), 2u);
    c.flushAll();
    EXPECT_EQ(c.validLines(), 0u);
}

TEST(Dram, RowBufferHitIsCheaper)
{
    DramConfig cfg;
    DramModel dram(cfg);
    const Cycles first = dram.access(0);      // row miss (closed)
    const Cycles second = dram.access(128);   // possibly other channel
    const Cycles again = dram.access(0);      // row hit
    EXPECT_EQ(first, cfg.rowMissCycles);
    EXPECT_EQ(again, cfg.rowHitCycles);
    (void)second;
}

TEST(Dram, RowConflictIsMostExpensive)
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.banksPerChannel = 1;
    DramModel dram(cfg);
    dram.access(0);
    const Cycles conflict = dram.access(cfg.rowBytes); // same bank, new row
    EXPECT_EQ(conflict, cfg.rowConflictCycles);
    EXPECT_EQ(dram.stats().counterValue("row_conflicts"), 1u);
}

TEST(MemLevelName, AllNamed)
{
    EXPECT_STREQ(memLevelName(MemLevel::L1), "L1");
    EXPECT_STREQ(memLevelName(MemLevel::L2), "L2");
    EXPECT_STREQ(memLevelName(MemLevel::LLC), "LLC");
    EXPECT_STREQ(memLevelName(MemLevel::RemoteCache), "RemoteCache");
    EXPECT_STREQ(memLevelName(MemLevel::DRAM), "DRAM");
}

} // namespace
} // namespace halo
