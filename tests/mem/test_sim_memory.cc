/**
 * @file
 * Unit tests for the lazily-paged simulated memory.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "mem/sim_memory.hh"

namespace halo {
namespace {

TEST(SimMemory, AllocateRespectsAlignment)
{
    SimMemory mem(1 << 20);
    const Addr a = mem.allocate(10, 64);
    const Addr b = mem.allocate(10, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 10);
}

TEST(SimMemory, AddressZeroNeverAllocated)
{
    SimMemory mem(1 << 20);
    EXPECT_GE(mem.allocate(1, 1), static_cast<Addr>(cacheLineBytes));
}

TEST(SimMemory, RoundTripScalars)
{
    SimMemory mem(1 << 20);
    const Addr a = mem.allocate(64);
    mem.store<std::uint64_t>(a, 0xdeadbeefcafef00dull);
    EXPECT_EQ(mem.load<std::uint64_t>(a), 0xdeadbeefcafef00dull);
    mem.store<std::uint16_t>(a + 32, 0x1234);
    EXPECT_EQ(mem.load<std::uint16_t>(a + 32), 0x1234);
}

TEST(SimMemory, UntouchedMemoryReadsZero)
{
    SimMemory mem(1 << 20);
    const Addr a = mem.allocate(128);
    EXPECT_EQ(mem.load<std::uint64_t>(a + 64), 0u);
}

TEST(SimMemory, CrossPageReadWrite)
{
    SimMemory mem(4 << 20);
    // Straddle a 64 KiB page boundary.
    const Addr a = SimMemory::pageBytes - 8;
    std::uint8_t out[16], in[16];
    for (int i = 0; i < 16; ++i)
        in[i] = static_cast<std::uint8_t>(i * 3 + 1);
    mem.write(a, in, sizeof(in));
    mem.read(a, out, sizeof(out));
    EXPECT_EQ(std::memcmp(in, out, sizeof(in)), 0);
}

TEST(SimMemory, LazyPagesOnlyMaterializeOnWrite)
{
    SimMemory mem(256 << 20);
    EXPECT_EQ(mem.materializedPages(), 0u);
    std::uint8_t buf[64] = {};
    mem.read(100 << 20, buf, sizeof(buf)); // reads don't materialize
    EXPECT_EQ(mem.materializedPages(), 0u);
    mem.store<std::uint32_t>(100 << 20, 7);
    EXPECT_EQ(mem.materializedPages(), 1u);
}

TEST(SimMemory, ZeroRange)
{
    SimMemory mem(1 << 20);
    const Addr a = mem.allocate(256);
    mem.store<std::uint64_t>(a + 8, 42);
    mem.zero(a, 256);
    EXPECT_EQ(mem.load<std::uint64_t>(a + 8), 0u);
}

TEST(SimMemory, EqualsComparesAgainstHostBuffer)
{
    SimMemory mem(1 << 20);
    const Addr a = mem.allocate(512);
    std::uint8_t data[300];
    for (std::size_t i = 0; i < sizeof(data); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    mem.write(a, data, sizeof(data));
    EXPECT_TRUE(mem.equals(a, data, sizeof(data)));
    data[299] ^= 0xff;
    EXPECT_FALSE(mem.equals(a, data, sizeof(data)));
}

TEST(SimMemory, ExhaustionIsFatal)
{
    SimMemory mem(4096);
    EXPECT_THROW(mem.allocate(1 << 20), FatalError);
}

/**
 * Exhaustion must be actionable at 10M-flow scale: the error names the
 * allocation that blew past the slab and the knob to raise, so a
 * too-small RuntimeConfig::shardMemBytes fails loudly at setup instead
 * of corrupting state later.
 */
TEST(SimMemory, ExhaustionNamesTheAllocationAndTheKnob)
{
    SimMemory mem(4096);
    try {
        mem.allocate(1 << 20, cacheLineBytes, "megaflow tuple table");
        FAIL() << "allocation past capacity must throw";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("megaflow tuple table"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("shardMemBytes"), std::string::npos) << msg;
        EXPECT_NE(msg.find("4096"), std::string::npos)
            << "capacity missing: " << msg;
    }

    // Untagged allocations still fail with the knob pointer.
    try {
        mem.allocate(1 << 20);
        FAIL() << "allocation past capacity must throw";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("a block"), std::string::npos) << msg;
        EXPECT_NE(msg.find("shardMemBytes"), std::string::npos) << msg;
    }
}

TEST(SimMemory, LineViewAliasesReadsAndWrites)
{
    SimMemory mem(1 << 20);
    const Addr a = mem.allocate(cacheLineBytes, cacheLineBytes);
    mem.store<std::uint64_t>(a + 16, 0x1122334455667788ull);

    SimMemory::LineView view = mem.lineView(a);
    std::uint64_t v = 0;
    std::memcpy(&v, view.data() + 16, sizeof(v));
    EXPECT_EQ(v, 0x1122334455667788ull);

    // Views over materialized pages stay coherent with write().
    mem.store<std::uint64_t>(a + 16, 0xddccbbaa99887766ull);
    std::memcpy(&v, view.data() + 16, sizeof(v));
    EXPECT_EQ(v, 0xddccbbaa99887766ull);

    // And writes through a mutable view are seen by read().
    SimMemory::LineViewMut mut = mem.lineViewMut(a);
    mut[0] = 0x5a;
    EXPECT_EQ(mem.load<std::uint8_t>(a), 0x5a);
}

TEST(SimMemory, LineViewOfUntouchedPageReadsZero)
{
    SimMemory mem(256 << 20);
    SimMemory::LineView view = mem.lineView(100 << 20);
    for (std::uint8_t byte : view)
        EXPECT_EQ(byte, 0u);
}

TEST(SimMemory, ReadOnlyViewsNeverMaterialize)
{
    SimMemory mem(256 << 20);
    EXPECT_EQ(mem.materializedPages(), 0u);
    (void)mem.lineView(100 << 20);
    (void)mem.rangeView(100 << 20, 16);
    EXPECT_EQ(mem.materializedPages(), 0u);
    // The mutable view must materialize, exactly like a write.
    (void)mem.lineViewMut(100 << 20);
    EXPECT_EQ(mem.materializedPages(), 1u);
}

TEST(SimMemory, LineViewRequiresAlignment)
{
    SimMemory mem(1 << 20);
    EXPECT_THROW(mem.lineView(cacheLineBytes + 1), PanicError);
    EXPECT_THROW(mem.lineViewMut(cacheLineBytes + 1), PanicError);
}

TEST(SimMemory, RangeViewFallsBackAcrossPages)
{
    SimMemory mem(4 << 20);
    const Addr straddle = SimMemory::pageBytes - 8;
    EXPECT_EQ(mem.rangeView(straddle, 16), nullptr);
    // In-page ranges of materialized pages are direct pointers.
    mem.store<std::uint64_t>(64, 0xabcdef0123456789ull);
    const std::uint8_t *p = mem.rangeView(64, 8);
    ASSERT_NE(p, nullptr);
    std::uint64_t v = 0;
    std::memcpy(&v, p, sizeof(v));
    EXPECT_EQ(v, 0xabcdef0123456789ull);
}

} // namespace
} // namespace halo
