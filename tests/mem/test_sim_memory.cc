/**
 * @file
 * Unit tests for the lazily-paged simulated memory.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "mem/sim_memory.hh"

namespace halo {
namespace {

TEST(SimMemory, AllocateRespectsAlignment)
{
    SimMemory mem(1 << 20);
    const Addr a = mem.allocate(10, 64);
    const Addr b = mem.allocate(10, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 10);
}

TEST(SimMemory, AddressZeroNeverAllocated)
{
    SimMemory mem(1 << 20);
    EXPECT_GE(mem.allocate(1, 1), static_cast<Addr>(cacheLineBytes));
}

TEST(SimMemory, RoundTripScalars)
{
    SimMemory mem(1 << 20);
    const Addr a = mem.allocate(64);
    mem.store<std::uint64_t>(a, 0xdeadbeefcafef00dull);
    EXPECT_EQ(mem.load<std::uint64_t>(a), 0xdeadbeefcafef00dull);
    mem.store<std::uint16_t>(a + 32, 0x1234);
    EXPECT_EQ(mem.load<std::uint16_t>(a + 32), 0x1234);
}

TEST(SimMemory, UntouchedMemoryReadsZero)
{
    SimMemory mem(1 << 20);
    const Addr a = mem.allocate(128);
    EXPECT_EQ(mem.load<std::uint64_t>(a + 64), 0u);
}

TEST(SimMemory, CrossPageReadWrite)
{
    SimMemory mem(4 << 20);
    // Straddle a 64 KiB page boundary.
    const Addr a = SimMemory::pageBytes - 8;
    std::uint8_t out[16], in[16];
    for (int i = 0; i < 16; ++i)
        in[i] = static_cast<std::uint8_t>(i * 3 + 1);
    mem.write(a, in, sizeof(in));
    mem.read(a, out, sizeof(out));
    EXPECT_EQ(std::memcmp(in, out, sizeof(in)), 0);
}

TEST(SimMemory, LazyPagesOnlyMaterializeOnWrite)
{
    SimMemory mem(256 << 20);
    EXPECT_EQ(mem.materializedPages(), 0u);
    std::uint8_t buf[64] = {};
    mem.read(100 << 20, buf, sizeof(buf)); // reads don't materialize
    EXPECT_EQ(mem.materializedPages(), 0u);
    mem.store<std::uint32_t>(100 << 20, 7);
    EXPECT_EQ(mem.materializedPages(), 1u);
}

TEST(SimMemory, ZeroRange)
{
    SimMemory mem(1 << 20);
    const Addr a = mem.allocate(256);
    mem.store<std::uint64_t>(a + 8, 42);
    mem.zero(a, 256);
    EXPECT_EQ(mem.load<std::uint64_t>(a + 8), 0u);
}

TEST(SimMemory, EqualsComparesAgainstHostBuffer)
{
    SimMemory mem(1 << 20);
    const Addr a = mem.allocate(512);
    std::uint8_t data[300];
    for (std::size_t i = 0; i < sizeof(data); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    mem.write(a, data, sizeof(data));
    EXPECT_TRUE(mem.equals(a, data, sizeof(data)));
    data[299] ^= 0xff;
    EXPECT_FALSE(mem.equals(a, data, sizeof(data)));
}

TEST(SimMemory, ExhaustionIsFatal)
{
    SimMemory mem(4096);
    EXPECT_THROW(mem.allocate(1 << 20), FatalError);
}

} // namespace
} // namespace halo
