/**
 * @file
 * Unit tests for the metrics registry and Prometheus exposition.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hh"
#include "sim/stats.hh"

namespace halo::obs {
namespace {

TEST(MetricsRegistry, GoldenExposition)
{
    MetricsRegistry reg;
    reg.counter("halo_rt_processed", {}, 12345);
    reg.gauge("halo_worker_cpu_pps", {{"worker", "0"}}, 1.5e6);
    reg.gauge("halo_worker_cpu_pps", {{"worker", "1"}}, 2.5e6);
    reg.counter("halo_rt_drops", {}, 0);

    // Families sorted by name, one TYPE line per family, registration
    // order preserved within a family, integral values printed exactly.
    const std::string expected =
        "# TYPE halo_rt_drops counter\n"
        "halo_rt_drops 0\n"
        "# TYPE halo_rt_processed counter\n"
        "halo_rt_processed 12345\n"
        "# TYPE halo_worker_cpu_pps gauge\n"
        "halo_worker_cpu_pps{worker=\"0\"} 1500000\n"
        "halo_worker_cpu_pps{worker=\"1\"} 2500000\n";
    EXPECT_EQ(reg.renderPrometheus(), expected);
}

TEST(MetricsRegistry, SanitizesNamesAndEscapesLabels)
{
    MetricsRegistry reg;
    reg.gauge("halo.lookup-rate/sec", {{"nf", "fw\"v2\"\n"}}, 1.0);
    reg.counter("0starts_with_digit", {}, 2.0);
    const std::string out = reg.renderPrometheus();
    EXPECT_NE(out.find("halo_lookup_rate_sec{nf=\"fw\\\"v2\\\"\\n\"} 1"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("_0starts_with_digit 2"), std::string::npos)
        << out;
}

TEST(MetricsRegistry, NonIntegralValuesRoundTrip)
{
    MetricsRegistry reg;
    reg.gauge("halo_frac", {}, 0.1);
    const std::string out = reg.renderPrometheus();
    EXPECT_NE(out.find("halo_frac 0.1\n"), std::string::npos) << out;
}

TEST(MetricsRegistry, AttachedSourcesSampleAtRenderTime)
{
    MetricsRegistry reg;
    PublishedCounter c;
    reg.attachCounter("halo_live", {}, c);
    double v = 1.0;
    reg.attach("halo_fn", {}, MetricKind::Gauge, [&v] { return v; });

    c.add(7);
    v = 3.5;
    std::string out = reg.renderPrometheus();
    EXPECT_NE(out.find("halo_live 7\n"), std::string::npos) << out;
    EXPECT_NE(out.find("halo_fn 3.5\n"), std::string::npos) << out;

    // A second render sees the new values: nothing was cached.
    c.add(3);
    v = 4.0;
    out = reg.renderPrometheus();
    EXPECT_NE(out.find("halo_live 10\n"), std::string::npos) << out;
    EXPECT_NE(out.find("halo_fn 4\n"), std::string::npos) << out;
}

TEST(MetricsRegistry, AddStatGroupMirrorsCountersAndAverages)
{
    StatGroup g("emc");
    Counter &hits = g.counter("hits");
    Average &occ = g.average("occupancy");
    hits += 42;
    occ.sample(2.0);
    occ.sample(4.0);

    MetricsRegistry reg;
    reg.addStatGroup(g, {{"worker", "3"}});
    const std::string out = reg.renderPrometheus();
    EXPECT_NE(out.find("halo_emc_hits{worker=\"3\"} 42\n"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("halo_emc_occupancy_mean{worker=\"3\"} 3\n"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("halo_emc_occupancy_samples{worker=\"3\"} 2\n"),
              std::string::npos)
        << out;
}

} // namespace
} // namespace halo::obs
