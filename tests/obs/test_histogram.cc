/**
 * @file
 * Unit tests for the HDR-style log-bucketed histogram.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "obs/histogram.hh"

namespace halo::obs {
namespace {

TEST(HdrHistogram, EmptyIsZero)
{
    HdrHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(HdrHistogram, ExactRegionCountsExactly)
{
    // Values below 2^subBits land in their own unit bucket.
    HdrHistogram h(5);
    for (std::uint64_t v = 0; v < 32; ++v)
        h.record(v, v + 1);
    for (std::uint64_t v = 0; v < 32; ++v) {
        EXPECT_EQ(h.bucketCount(v), v + 1) << "bucket " << v;
        EXPECT_EQ(h.bucketLow(v), v);
        EXPECT_EQ(h.bucketHigh(v), v + 1);
    }
    EXPECT_EQ(h.count(), 32u * 33u / 2);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 31u);
}

TEST(HdrHistogram, BucketBoundsTileTheRange)
{
    // Every bucket's exclusive high equals the next bucket's inclusive
    // low: the bands stack contiguously with no gaps or overlaps.
    HdrHistogram h(5);
    for (std::size_t i = 0; i + 1 < h.buckets(); ++i)
        EXPECT_EQ(h.bucketHigh(i), h.bucketLow(i + 1)) << "bucket " << i;
}

TEST(HdrHistogram, ValueLandsInsideItsBucketBounds)
{
    HdrHistogram h(5);
    const std::uint64_t probes[] = {
        0,   1,    31,         32,         33,        63,
        64,  100,  1000,       4096,       123456789, 1ull << 40,
        (1ull << 40) + 12345,  std::numeric_limits<std::uint64_t>::max(),
    };
    for (const std::uint64_t v : probes) {
        h.reset();
        h.record(v);
        // Find the single nonzero bucket and check it brackets v.
        for (std::size_t i = 0; i < h.buckets(); ++i) {
            if (h.bucketCount(i) == 0)
                continue;
            EXPECT_GE(v, h.bucketLow(i)) << "value " << v;
            if (h.bucketHigh(i) != ~0ull)
                EXPECT_LT(v, h.bucketHigh(i)) << "value " << v;
            else
                EXPECT_LE(v, ~0ull);
        }
    }
}

TEST(HdrHistogram, RelativeErrorBounded)
{
    // Any reported percentile is within 2^-subBits of the true value.
    HdrHistogram h(5);
    const std::uint64_t v = 987654321;
    h.record(v);
    const double p = h.percentile(0.5);
    EXPECT_NEAR(p, static_cast<double>(v),
                static_cast<double>(v) / 32.0);
}

TEST(HdrHistogram, PercentilesOfUniformRamp)
{
    HdrHistogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.record(v * 1000); // 1000..1000000ns ramp
    EXPECT_NEAR(h.percentile(0.5), 500000.0, 500000.0 * 0.05);
    EXPECT_NEAR(h.percentile(0.9), 900000.0, 900000.0 * 0.05);
    EXPECT_NEAR(h.percentile(0.99), 990000.0, 990000.0 * 0.05);
    // Extremes clamp to the recorded min/max exactly.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000000.0);
    EXPECT_DOUBLE_EQ(h.mean(), 500500.0);
}

TEST(HdrHistogram, SingleValuePercentilesClampToIt)
{
    HdrHistogram h;
    h.record(777777);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 777777.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 777777.0);
    // Interior quantiles interpolate within the bucket but clamp to
    // the exact recorded range, so they equal the value too.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 777777.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.999), 777777.0);
}

TEST(HdrHistogram, HandlesUint64Extremes)
{
    HdrHistogram h;
    const std::uint64_t maxv =
        std::numeric_limits<std::uint64_t>::max();
    h.record(0);
    h.record(maxv);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), maxv);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0),
                     static_cast<double>(maxv));
    // The top bucket's bounds must not overflow.
    for (std::size_t i = 0; i < h.buckets(); ++i)
        EXPECT_LE(h.bucketLow(i), h.bucketHigh(i));
}

TEST(HdrHistogram, MergeMatchesCombinedRecording)
{
    HdrHistogram a, b, combined;
    for (std::uint64_t v = 1; v <= 500; ++v) {
        a.record(v * 7);
        combined.record(v * 7);
    }
    for (std::uint64_t v = 1; v <= 500; ++v) {
        b.record(v * 131);
        combined.record(v * 131);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.min(), combined.min());
    EXPECT_EQ(a.max(), combined.max());
    EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
    for (const double q : {0.1, 0.5, 0.9, 0.99, 0.999})
        EXPECT_DOUBLE_EQ(a.percentile(q), combined.percentile(q))
            << "q=" << q;
}

TEST(HdrHistogram, MergeWithEmptyIsIdentity)
{
    HdrHistogram a, empty;
    a.record(42);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.min(), 42u);
    EXPECT_EQ(a.max(), 42u);

    HdrHistogram b;
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_EQ(b.min(), 42u);
    EXPECT_EQ(b.max(), 42u);
}

TEST(HdrHistogram, ResetClearsEverything)
{
    HdrHistogram h;
    h.record(123);
    h.record(456);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    h.record(7);
    EXPECT_EQ(h.min(), 7u);
    EXPECT_EQ(h.max(), 7u);
}

} // namespace
} // namespace halo::obs
