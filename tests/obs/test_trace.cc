/**
 * @file
 * Unit tests for the trace recorder, scope macro, and Chrome drain.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>

#include "obs/trace.hh"

namespace halo::obs {
namespace {

/** Uninstall any recorder on scope exit so tests stay independent. */
struct ScopedInstall
{
    explicit ScopedInstall(TraceRecorder *rec)
        : prev(TraceRecorder::installThisThread(rec))
    {
    }
    ~ScopedInstall() { TraceRecorder::installThisThread(prev); }
    TraceRecorder *prev;
};

TEST(TraceName, InterningIsIdempotent)
{
    const std::uint16_t a = internTraceName("test/intern_a");
    const std::uint16_t b = internTraceName("test/intern_b");
    EXPECT_NE(a, b);
    EXPECT_EQ(internTraceName("test/intern_a"), a);
    EXPECT_STREQ(traceName(a), "test/intern_a");
    EXPECT_STREQ(traceName(b), "test/intern_b");
}

TEST(TraceRecorder, CapacityRoundsUpToPowerOfTwo)
{
    TraceRecorder rec(5);
    EXPECT_EQ(rec.capacity(), 8u);
    TraceRecorder exact(16);
    EXPECT_EQ(exact.capacity(), 16u);
}

TEST(TraceRecorder, RecordsInOrder)
{
    TraceRecorder rec(8);
    const std::uint16_t id = internTraceName("test/order");
    for (std::uint64_t i = 0; i < 5; ++i)
        rec.record(id, i * 100, i * 100 + 50);
    ASSERT_EQ(rec.size(), 5u);
    EXPECT_EQ(rec.recorded(), 5u);
    EXPECT_EQ(rec.dropped(), 0u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(rec.event(i).startNanos, i * 100);
        EXPECT_EQ(rec.event(i).durNanos, 50u);
        EXPECT_EQ(rec.event(i).nameId, id);
    }
}

TEST(TraceRecorder, WraparoundKeepsNewestOldestFirst)
{
    TraceRecorder rec(4);
    const std::uint16_t id = internTraceName("test/wrap");
    for (std::uint64_t i = 0; i < 10; ++i)
        rec.record(id, i, i + 1);
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.recorded(), 10u);
    EXPECT_EQ(rec.dropped(), 6u);
    // Events 6..9 survive, oldest first.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(rec.event(i).startNanos, 6 + i);
}

TEST(TraceRecorder, DurationSaturatesAt32Bits)
{
    TraceRecorder rec(4);
    const std::uint16_t id = internTraceName("test/sat");
    rec.record(id, 0, 10ull << 32); // ~42.9 s
    EXPECT_EQ(rec.event(0).durNanos, 0xffffffffu);
    rec.record(id, 100, 50); // end before start clamps to 0
    EXPECT_EQ(rec.event(1).durNanos, 0u);
}

TEST(TraceScope, RecordsOnlyWhenInstalled)
{
    if (!traceCompiledIn())
        GTEST_SKIP() << "built with HALO_TRACING=OFF";

    TraceRecorder rec(16);
    {
        // No recorder installed: the scope must be a cheap no-op.
        HALO_TRACE_SCOPE("test/scope_uninstalled");
    }
    EXPECT_EQ(rec.recorded(), 0u);

    {
        ScopedInstall install(&rec);
        HALO_TRACE_SCOPE("test/scope_installed");
    }
    ASSERT_EQ(rec.recorded(), 1u);
    EXPECT_STREQ(traceName(rec.event(0).nameId),
                 "test/scope_installed");
}

TEST(TraceScope, InstallationIsPerThread)
{
    if (!traceCompiledIn())
        GTEST_SKIP() << "built with HALO_TRACING=OFF";

    TraceRecorder mine(16);
    ScopedInstall install(&mine);
    std::thread other([] {
        // This thread never installed a recorder.
        EXPECT_EQ(TraceRecorder::current(), nullptr);
        HALO_TRACE_SCOPE("test/other_thread");
    });
    other.join();
    EXPECT_EQ(mine.recorded(), 0u);
}

TEST(WriteChromeTrace, EmitsWellFormedJson)
{
    TraceRecorder rec(8);
    const std::uint16_t id = internTraceName("test/json \"quoted\"");
    rec.record(id, 1000, 2500);
    rec.record(id, 3000, 3100);

    const TraceThread threads[] = {{&rec, "worker0", 1}};
    std::ostringstream os;
    writeChromeTrace(os, threads);
    const std::string json = os.str();

    // Structural balance scan (outside strings).
    int braces = 0, brackets = 0;
    bool in_string = false, escaped = false;
    for (const char c : json) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = true;
            continue;
        }
        if (c == '"') {
            in_string = !in_string;
            continue;
        }
        if (in_string)
            continue;
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);

    // The span name survives (escaped), the thread row is labeled, and
    // both events are complete ("X") events.
    EXPECT_NE(json.find("test/json \\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("worker0"), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(WriteChromeTrace, DrainConcurrentWithLiveRecorderIsClean)
{
    // The contract is per-recorder: drain a recorder only after its
    // owner thread joined. Another thread recording into its *own*
    // ring — and interning names, the one shared structure — must not
    // race the drain. TSan builds verify exactly that.
    TraceRecorder joined(64);
    {
        std::thread t([&joined] {
            ScopedInstall install(&joined);
            const std::uint16_t id =
                internTraceName("test/joined_span");
            for (int i = 0; i < 32; ++i)
                joined.record(id, static_cast<std::uint64_t>(i) * 10,
                              static_cast<std::uint64_t>(i) * 10 + 5);
        });
        t.join();
    }

    TraceRecorder live(64);
    std::thread writer([&live] {
        ScopedInstall install(&live);
        // Interning stores the pointer, so names must be literals;
        // cycling through several keeps the interning mutex hot under
        // the concurrent drains below.
        static const char *const kNames[] = {
            "test/live_span_0", "test/live_span_1",
            "test/live_span_2", "test/live_span_3"};
        for (int spin = 0; spin < 20000; ++spin) {
            const std::uint16_t id = internTraceName(kNames[spin & 3]);
            TraceScope scope(id);
        }
    });

    for (int pass = 0; pass < 8; ++pass) {
        const TraceThread threads[] = {{&joined, "joined", 1}};
        std::ostringstream os;
        writeChromeTrace(os, threads);
        EXPECT_NE(os.str().find("test/joined_span"), std::string::npos);
    }
    writer.join();

    // Now the live thread has quiesced too; both rings drain together.
    const TraceThread threads[] = {{&joined, "joined", 1},
                                   {&live, "live", 2}};
    std::ostringstream os;
    writeChromeTrace(os, threads);
    EXPECT_NE(os.str().find("test/live_span_0"), std::string::npos);
}

TEST(WriteChromeTrace, EmptyRecorderStillValid)
{
    TraceRecorder rec(4);
    const TraceThread threads[] = {{&rec, "idle", 7}};
    std::ostringstream os;
    writeChromeTrace(os, threads);
    // Metadata only; still a complete JSON object.
    EXPECT_NE(os.str().find("traceEvents"), std::string::npos);
    EXPECT_EQ(os.str().back(), '\n');
}

} // namespace
} // namespace halo::obs
