/**
 * @file
 * Lifecycle and threading tests for the background sampler. Built and
 * run under TSan in CI: the concurrent-writer test exercises the
 * relaxed-atomic sampling contract against a live PublishedCounter.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "obs/sampler.hh"
#include "sim/stats.hh"

namespace halo::obs {
namespace {

using namespace std::chrono_literals;

TEST(Sampler, RecordsAtLeastOneSamplePerStartStop)
{
    Sampler s({"x"}, [] { return std::vector<double>{1.0}; });
    s.start(1000us);
    EXPECT_TRUE(s.running());
    s.stop();
    EXPECT_FALSE(s.running());
    // One immediate sample on start plus one final one on stop.
    EXPECT_GE(s.series().samples(), 2u);
    EXPECT_EQ(s.series().columns.size(), 1u);
    for (const auto &row : s.series().rows) {
        ASSERT_EQ(row.size(), 1u);
        EXPECT_DOUBLE_EQ(row[0], 1.0);
    }
}

TEST(Sampler, TimestampsAreMonotonic)
{
    Sampler s({"x"}, [] { return std::vector<double>{0.0}; });
    s.start(200us);
    std::this_thread::sleep_for(5ms);
    s.stop();
    const SampleSeries &ser = s.series();
    ASSERT_GE(ser.samples(), 2u);
    EXPECT_EQ(ser.tNanos.size(), ser.rows.size());
    for (std::size_t i = 1; i < ser.tNanos.size(); ++i)
        EXPECT_GE(ser.tNanos[i], ser.tNanos[i - 1]);
}

TEST(Sampler, StopIsIdempotentAndDestructorImpliesIt)
{
    Sampler s({"x"}, [] { return std::vector<double>{0.0}; });
    s.start(1000us);
    s.stop();
    const std::size_t n = s.series().samples();
    s.stop(); // second stop: no-op, series unchanged
    EXPECT_EQ(s.series().samples(), n);
    // Destructor of a never-started sampler is fine too.
    Sampler idle({"y"}, [] { return std::vector<double>{0.0}; });
    EXPECT_FALSE(idle.running());
}

TEST(Sampler, RestartAppendsToTheSeries)
{
    Sampler s({"x"}, [] { return std::vector<double>{0.0}; });
    s.start(1000us);
    s.stop();
    const std::size_t first = s.series().samples();
    s.start(1000us);
    s.stop();
    EXPECT_GT(s.series().samples(), first);
}

TEST(Sampler, ReadsLiveCountersWhileWriterRuns)
{
    // The documented contract: the sample function may read
    // PublishedCounters (relaxed atomics) while their owner threads
    // write. TSan validates the absence of a data race here.
    PublishedCounter c;
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        while (!stop.load(std::memory_order_relaxed))
            c.add(1);
    });

    Sampler s({"count"}, [&c] {
        return std::vector<double>{static_cast<double>(c.value())};
    });
    s.start(200us);
    std::this_thread::sleep_for(5ms);
    s.stop();
    stop.store(true, std::memory_order_relaxed);
    writer.join();

    const SampleSeries &ser = s.series();
    ASSERT_GE(ser.samples(), 2u);
    // Monotonic: each sample sees at least the previous one's count.
    for (std::size_t i = 1; i < ser.rows.size(); ++i)
        EXPECT_GE(ser.rows[i][0], ser.rows[i - 1][0]);
}

TEST(Sampler, DecimationCapsSeriesLength)
{
    std::atomic<int> calls{0};
    Sampler s({"n"}, [&calls] {
        return std::vector<double>{
            static_cast<double>(calls.fetch_add(1))};
    });
    s.start(100us, /*max_samples=*/8);
    // Enough samples to overflow the cap and decimate at least twice.
    // (Each decimation doubles the interval, so don't wait for many
    // more — the tail samples arrive exponentially slower.)
    while (calls.load() < 14)
        std::this_thread::sleep_for(1ms);
    s.stop();

    const SampleSeries &ser = s.series();
    // The cap bounds the retained series even though far more samples
    // were taken...
    EXPECT_LE(ser.samples(), 8u);
    EXPECT_GE(ser.samples(), 4u); // decimation halves, never empties
    // ...and the retained rows still span the whole run: the first
    // sample survives every decimation, the final stop() sample is
    // appended last.
    ASSERT_GE(ser.samples(), 2u);
    EXPECT_DOUBLE_EQ(ser.rows.front()[0], 0.0);
    EXPECT_GT(ser.rows.back()[0], 8.0);
    // Timestamps stay monotonic through in-place compaction.
    for (std::size_t i = 1; i < ser.tNanos.size(); ++i)
        EXPECT_GE(ser.tNanos[i], ser.tNanos[i - 1]);
    // Retained sample values stay monotonic too (every row is a
    // surviving original, not an interpolation).
    for (std::size_t i = 1; i < ser.rows.size(); ++i)
        EXPECT_GT(ser.rows[i][0], ser.rows[i - 1][0]);
}

TEST(Sampler, ZeroCapMeansUnbounded)
{
    std::atomic<int> calls{0};
    Sampler s({"n"}, [&calls] {
        return std::vector<double>{
            static_cast<double>(calls.fetch_add(1))};
    });
    s.start(100us, /*max_samples=*/0);
    while (calls.load() < 20)
        std::this_thread::sleep_for(1ms);
    s.stop();
    // No decimation: every sample taken was retained.
    EXPECT_GE(s.series().samples(), 20u);
}

TEST(Sampler, TinyCapIsRejected)
{
    Sampler s({"x"}, [] { return std::vector<double>{0.0}; });
    // A cap of 1 cannot hold the immediate + final samples.
    EXPECT_THROW(s.start(1000us, 1), PanicError);
}

} // namespace
} // namespace halo::obs
