/**
 * @file
 * Unit tests for the Prometheus scrape endpoint: ephemeral-port bind,
 * GET /metrics round-trip against a raw socket client, 404 on other
 * paths, and live re-rendering while counters move underneath.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hh"
#include "obs/prom_http.hh"
#include "sim/stats.hh"

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace halo::obs {
namespace {

#ifdef __linux__

/** Minimal HTTP/1.1 client: one request, read to EOF. */
std::string
httpGet(std::uint16_t port, const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return {};
    }
    const std::string req = "GET " + path +
                            " HTTP/1.1\r\n"
                            "Host: localhost\r\n"
                            "Connection: close\r\n\r\n";
    size_t off = 0;
    while (off < req.size()) {
        const ssize_t n =
            ::send(fd, req.data() + off, req.size() - off, 0);
        if (n <= 0)
            break;
        off += static_cast<size_t>(n);
    }
    std::string resp;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        resp.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return resp;
}

TEST(PromHttpExporter, ServesMetricsOnEphemeralPort)
{
    MetricsRegistry reg;
    PublishedCounter hits;
    reg.attachCounter("halo_test_hits", {{"worker", "0"}}, hits);
    hits.add(41);

    PromHttpExporter exporter({/*port=*/0},
                              [&reg] { return reg.renderPrometheus(); });
    if (!exporter.start())
        GTEST_SKIP() << "cannot bind loopback socket: "
                     << exporter.lastError();
    ASSERT_TRUE(exporter.running());
    ASSERT_NE(exporter.port(), 0);

    const std::string resp = httpGet(exporter.port(), "/metrics");
    EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos) << resp;
    EXPECT_NE(resp.find("text/plain"), std::string::npos) << resp;
    EXPECT_NE(resp.find("# TYPE halo_test_hits counter"),
              std::string::npos)
        << resp;
    EXPECT_NE(resp.find("halo_test_hits{worker=\"0\"} 41"),
              std::string::npos)
        << resp;

    // Attached sources re-render at scrape time — a second scrape sees
    // the moved counter, exactly what a live Prometheus would.
    hits.add(1);
    const std::string resp2 = httpGet(exporter.port(), "/metrics");
    EXPECT_NE(resp2.find("halo_test_hits{worker=\"0\"} 42"),
              std::string::npos)
        << resp2;

    EXPECT_EQ(exporter.scrapesServed(), 2u);
    exporter.stop();
    EXPECT_FALSE(exporter.running());
}

TEST(PromHttpExporter, NonMetricsPathsGet404)
{
    PromHttpExporter exporter({0}, [] { return std::string("x 1\n"); });
    if (!exporter.start())
        GTEST_SKIP() << "cannot bind loopback socket: "
                     << exporter.lastError();
    const std::string resp = httpGet(exporter.port(), "/other");
    EXPECT_NE(resp.find("404"), std::string::npos) << resp;
    // A 404 is not a scrape.
    EXPECT_EQ(exporter.scrapesServed(), 0u);
    exporter.stop();
}

TEST(PromHttpExporter, StopIsIdempotent)
{
    int renders = 0;
    PromHttpExporter exporter({0}, [&renders] {
        ++renders;
        return std::string("m 1\n");
    });
    if (!exporter.start())
        GTEST_SKIP() << "cannot bind loopback socket: "
                     << exporter.lastError();
    EXPECT_NE(httpGet(exporter.port(), "/metrics").find("m 1"),
              std::string::npos);
    exporter.stop();
    exporter.stop(); // idempotent
    EXPECT_FALSE(exporter.running());
    EXPECT_EQ(renders, 1);
}

#else // !__linux__

TEST(PromHttpExporter, SkippedOffLinux)
{
    GTEST_SKIP() << "raw-socket client test is Linux-only";
}

#endif

} // namespace
} // namespace halo::obs
