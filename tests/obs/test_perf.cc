/**
 * @file
 * Unit tests for the hardware perf-counter layer: degraded-mode
 * fallback via an injected failing open syscall, multiplex scaling
 * math, sampled-attribution bookkeeping, and the golden Prometheus
 * exposition of a recorder wired like Runtime::registerMetrics.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/perf.hh"

namespace halo::obs {
namespace {

/** OpenFn that always fails with a fixed errno. */
PerfCounterGroup::OpenFn
failingOpen(int err)
{
    return [err](std::uint32_t, std::uint64_t, int) { return -err; };
}

/** RAII TLS install, mirroring the runtime's worker setup. */
struct ScopedInstall
{
    explicit ScopedInstall(PerfRecorder *rec)
        : prev(PerfRecorder::installThisThread(rec))
    {
    }
    ~ScopedInstall() { PerfRecorder::installThisThread(prev); }
    PerfRecorder *prev;
};

TEST(PerfCounterGroup, DegradesWhenOpenFails)
{
    PerfCounterGroup g(failingOpen(EPERM));
    EXPECT_TRUE(g.degraded());
    EXPECT_EQ(g.degradedErrno(), EPERM);

    const PerfGroupReading r = g.read();
    EXPECT_FALSE(r.hwValid);
    EXPECT_EQ(r.timeEnabled, 0u);
    EXPECT_EQ(r.timeRunning, 0u);
    for (unsigned e = 0; e < numPerfEvents; ++e)
        EXPECT_EQ(r.raw[e], 0u);
}

TEST(PerfCounterGroup, AllOrNothingOnPartialFailure)
{
    // Leader opens, a later event fails: the whole group must degrade
    // (a partial group would skew cross-event ratios silently).
    int calls = 0;
    PerfCounterGroup g(
        [&calls](std::uint32_t, std::uint64_t, int) {
            return ++calls <= 2 ? -ENODEV : -EACCES;
        });
    EXPECT_TRUE(g.degraded());
    EXPECT_NE(g.degradedErrno(), 0);
    EXPECT_FALSE(g.read().hwValid);
}

TEST(PerfScaledDelta, ExactWhenNotMultiplexed)
{
    PerfGroupReading a, b;
    a.hwValid = b.hwValid = true;
    a.timeEnabled = 1000;
    a.timeRunning = 1000;
    b.timeEnabled = 2000;
    b.timeRunning = 2000;
    for (unsigned e = 0; e < numPerfEvents; ++e) {
        a.raw[e] = 100 * (e + 1);
        b.raw[e] = 100 * (e + 1) + 7 * (e + 1);
    }
    const auto d = perfScaledDelta(a, b);
    for (unsigned e = 0; e < numPerfEvents; ++e)
        EXPECT_EQ(d[e], 7u * (e + 1)) << perfEventName(e);
}

TEST(PerfScaledDelta, ScalesByEnabledOverRunning)
{
    // Group scheduled for 2000 ns but only counting for 1000 ns:
    // the standard perf estimate doubles the raw deltas.
    PerfGroupReading a, b;
    a.hwValid = b.hwValid = true;
    a.timeEnabled = 0;
    a.timeRunning = 0;
    b.timeEnabled = 2000;
    b.timeRunning = 1000;
    a.raw[0] = 500;
    b.raw[0] = 600; // raw delta 100 -> scaled 200
    const auto d = perfScaledDelta(a, b);
    EXPECT_EQ(d[0], 200u);
}

TEST(PerfScaledDelta, ZeroOnInvalidOrStalledReadings)
{
    PerfGroupReading valid;
    valid.hwValid = true;
    valid.timeEnabled = 100;
    valid.timeRunning = 100;
    valid.raw[0] = 42;

    PerfGroupReading invalid; // hwValid=false (degraded read)
    for (unsigned e = 0; e < numPerfEvents; ++e) {
        EXPECT_EQ(perfScaledDelta(invalid, valid)[e], 0u);
        EXPECT_EQ(perfScaledDelta(valid, invalid)[e], 0u);
    }

    // No running time elapsed between the reads: nothing to scale.
    PerfGroupReading stalled = valid;
    stalled.raw[0] = 99;
    EXPECT_EQ(perfScaledDelta(valid, stalled)[0], 0u);
}

TEST(PerfStage, InterningIsIdempotent)
{
    const std::uint16_t a = internPerfStage("unit/intern_a");
    // Distinct pointer, same content: must map to the same id.
    const std::string copy("unit/intern_a");
    EXPECT_EQ(internPerfStage(copy.c_str()), a);
    EXPECT_STREQ(perfStageName(a), "unit/intern_a");

    const std::uint16_t b = internPerfStage("unit/intern_b");
    EXPECT_NE(a, b);
    EXPECT_GE(perfStageCount(), 2u);
}

TEST(PerfStageTotals, EstimatedEventsScalesSampledToAllEntries)
{
    PerfStageTotals t;
    t.entries = 8;
    t.sampledEntries = 2;
    t.events[0] = 50; // over the 2 sampled entries
    EXPECT_DOUBLE_EQ(t.estimatedEvents(0), 200.0); // 50 * 8/2

    PerfStageTotals unsampled;
    unsampled.entries = 8;
    EXPECT_DOUBLE_EQ(unsampled.estimatedEvents(0), 0.0);
}

TEST(PerfRecorder, DegradedScopesStillCountEntriesAndTsc)
{
    const std::uint16_t stage = internPerfStage("unit/degraded_scope");
    PerfRecorder rec(/*sample_shift=*/0, failingOpen(EPERM));
    rec.openThisThread();
    EXPECT_TRUE(rec.degraded());
    EXPECT_EQ(rec.degradedErrno(), EPERM);

    {
        ScopedInstall install(&rec);
        ASSERT_EQ(PerfRecorder::current(), &rec);
        volatile std::uint64_t sink = 0;
        for (int i = 0; i < 16; ++i) {
            PerfScope scope(stage);
            for (int j = 0; j < 64; ++j)
                sink = sink + static_cast<std::uint64_t>(j);
        }
    }
    EXPECT_EQ(PerfRecorder::current(), nullptr);

    const PerfStageTotals t = rec.stage(stage);
    EXPECT_EQ(t.stage, "unit/degraded_scope");
    EXPECT_EQ(t.entries, 16u);
    EXPECT_GT(t.tscCycles, 0u);
    // rdtsc-only mode: no group reads, no event counts.
    EXPECT_EQ(t.sampledEntries, 0u);
    for (unsigned e = 0; e < numPerfEvents; ++e)
        EXPECT_EQ(t.events[e], 0u);
}

TEST(PerfRecorder, ScopeIsNoopWithoutInstalledRecorder)
{
    ASSERT_EQ(PerfRecorder::current(), nullptr);
    const std::uint16_t stage = internPerfStage("unit/noop_scope");
    PerfScope scope(stage); // must not crash or touch anything
}

TEST(PerfRecorder, AddSampleAndSnapshot)
{
    const std::uint16_t sa = internPerfStage("unit/snap_a");
    const std::uint16_t sb = internPerfStage("unit/snap_b");
    PerfRecorder rec(6, failingOpen(ENOENT));

    std::array<std::uint64_t, numPerfEvents> ev{};
    for (unsigned e = 0; e < numPerfEvents; ++e)
        ev[e] = 10 * (e + 1);
    rec.addSample(sa, 100, &ev);
    rec.addSample(sa, 100); // unsampled entry
    rec.addSample(sb, 7);

    const PerfStageTotals ta = rec.stage(sa);
    EXPECT_EQ(ta.entries, 2u);
    EXPECT_EQ(ta.tscCycles, 200u);
    EXPECT_EQ(ta.sampledEntries, 1u);
    EXPECT_EQ(ta.events[0], 10u);
    // Scaled estimate: sampled totals * entries/sampledEntries.
    EXPECT_DOUBLE_EQ(ta.estimatedEvents(0), 20.0);

    const std::vector<PerfStageTotals> snap = perfSnapshotStages(rec);
    // Only stages this recorder touched appear, sorted by name.
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].stage, "unit/snap_a");
    EXPECT_EQ(snap[1].stage, "unit/snap_b");
    EXPECT_EQ(snap[1].tscCycles, 7u);
}

TEST(PerfMergeStages, MergesByStageName)
{
    PerfStageTotals a;
    a.stage = "s/x";
    a.entries = 2;
    a.tscCycles = 10;
    a.sampledEntries = 1;
    a.events[0] = 5;

    PerfStageTotals b = a;
    b.tscCycles = 30;
    PerfStageTotals c;
    c.stage = "s/new";
    c.entries = 1;
    c.tscCycles = 1;

    std::vector<PerfStageTotals> into{a};
    perfMergeStages(into, {b, c});
    ASSERT_EQ(into.size(), 2u);
    // Sorted by name after merge.
    EXPECT_EQ(into[0].stage, "s/new");
    EXPECT_EQ(into[1].stage, "s/x");
    EXPECT_EQ(into[1].entries, 4u);
    EXPECT_EQ(into[1].tscCycles, 40u);
    EXPECT_EQ(into[1].sampledEntries, 2u);
    EXPECT_EQ(into[1].events[0], 10u);
}

TEST(PerfExposition, GoldenPrometheusRendering)
{
    // Mirror Runtime::registerMetrics' per-recorder wiring for two
    // known stages and pin the exact exposition text.
    const std::uint16_t ga = internPerfStage("golden/a");
    const std::uint16_t gb = internPerfStage("golden/b");
    PerfRecorder rec(6, failingOpen(EPERM));
    rec.openThisThread();

    std::array<std::uint64_t, numPerfEvents> ev{10, 20, 30, 40, 50};
    rec.addSample(ga, 100, &ev);
    rec.addSample(gb, 7);

    MetricsRegistry reg;
    const MetricLabels base{{"worker", "0"}};
    reg.attach("halo_perf_degraded", base, MetricKind::Gauge,
               [&rec] { return rec.degraded() ? 1.0 : 0.0; });
    for (std::uint16_t id : {ga, gb}) {
        MetricLabels l = base;
        l.emplace_back("stage", perfStageName(id));
        reg.attach("halo_perf_stage_entries", l, MetricKind::Counter,
                   [&rec, id] {
                       return static_cast<double>(rec.stage(id).entries);
                   });
        reg.attach("halo_perf_stage_tsc_cycles", l,
                   MetricKind::Counter, [&rec, id] {
                       return static_cast<double>(
                           rec.stage(id).tscCycles);
                   });
        for (unsigned e = 0; e < numPerfEvents; ++e)
            reg.attach(std::string("halo_perf_stage_") +
                           perfEventName(e),
                       l, MetricKind::Counter, [&rec, id, e] {
                           return rec.stage(id).estimatedEvents(e);
                       });
    }

    const std::string expected =
        "# TYPE halo_perf_degraded gauge\n"
        "halo_perf_degraded{worker=\"0\"} 1\n"
        "# TYPE halo_perf_stage_branch_misses counter\n"
        "halo_perf_stage_branch_misses{worker=\"0\",stage=\"golden/a\"}"
        " 50\n"
        "halo_perf_stage_branch_misses{worker=\"0\",stage=\"golden/b\"}"
        " 0\n"
        "# TYPE halo_perf_stage_cycles counter\n"
        "halo_perf_stage_cycles{worker=\"0\",stage=\"golden/a\"} 10\n"
        "halo_perf_stage_cycles{worker=\"0\",stage=\"golden/b\"} 0\n"
        "# TYPE halo_perf_stage_dtlb_load_misses counter\n"
        "halo_perf_stage_dtlb_load_misses{worker=\"0\","
        "stage=\"golden/a\"} 40\n"
        "halo_perf_stage_dtlb_load_misses{worker=\"0\","
        "stage=\"golden/b\"} 0\n"
        "# TYPE halo_perf_stage_entries counter\n"
        "halo_perf_stage_entries{worker=\"0\",stage=\"golden/a\"} 1\n"
        "halo_perf_stage_entries{worker=\"0\",stage=\"golden/b\"} 1\n"
        "# TYPE halo_perf_stage_instructions counter\n"
        "halo_perf_stage_instructions{worker=\"0\",stage=\"golden/a\"}"
        " 20\n"
        "halo_perf_stage_instructions{worker=\"0\",stage=\"golden/b\"}"
        " 0\n"
        "# TYPE halo_perf_stage_llc_load_misses counter\n"
        "halo_perf_stage_llc_load_misses{worker=\"0\","
        "stage=\"golden/a\"} 30\n"
        "halo_perf_stage_llc_load_misses{worker=\"0\","
        "stage=\"golden/b\"} 0\n"
        "# TYPE halo_perf_stage_tsc_cycles counter\n"
        "halo_perf_stage_tsc_cycles{worker=\"0\",stage=\"golden/a\"}"
        " 100\n"
        "halo_perf_stage_tsc_cycles{worker=\"0\",stage=\"golden/b\"}"
        " 7\n";
    EXPECT_EQ(reg.renderPrometheus(), expected);
}

TEST(PerfTsc, MonotonicNonDecreasing)
{
    std::uint64_t last = perfTscNow();
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t now = perfTscNow();
        ASSERT_GE(now, last);
        last = now;
    }
}

TEST(Perf, RealGroupWhenHardwareAllows)
{
    // With the default open fn this either opens real counters or
    // degrades cleanly (EPERM/EACCES/ENOENT in containers) — both are
    // valid outcomes; what must never happen is a half-open group.
    PerfCounterGroup g;
    if (g.degraded()) {
        EXPECT_NE(g.degradedErrno(), 0);
        EXPECT_FALSE(g.read().hwValid);
        GTEST_SKIP() << "perf_event_open unavailable (errno "
                     << g.degradedErrno() << ")";
    }
    const PerfGroupReading r0 = g.read();
    ASSERT_TRUE(r0.hwValid);
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink = sink + static_cast<std::uint64_t>(i);
    const PerfGroupReading r1 = g.read();
    ASSERT_TRUE(r1.hwValid);
    const auto d = perfScaledDelta(r0, r1);
    EXPECT_GT(d[static_cast<unsigned>(PerfEvent::Cycles)], 0u);
    EXPECT_GT(d[static_cast<unsigned>(PerfEvent::Instructions)], 0u);
}

} // namespace
} // namespace halo::obs
