/**
 * @file
 * End-to-end integration tests asserting the paper's headline *shapes*
 * on scaled-down workloads (the full-size sweeps live in bench/).
 */

#include <gtest/gtest.h>

#include "core/halo_system.hh"
#include "cpu/trace_builder.hh"
#include "flow/ruleset.hh"
#include "hash/cuckoo_table.hh"
#include "power/power_model.hh"
#include "vswitch/vswitch.hh"

namespace halo {
namespace {

std::array<std::uint8_t, 16>
keyForId(std::uint64_t id)
{
    std::array<std::uint8_t, 16> key{};
    std::memcpy(key.data(), &id, sizeof(id));
    const std::uint64_t mixed = id * 0x9e3779b97f4a7c15ull;
    std::memcpy(key.data() + 8, &mixed, sizeof(mixed));
    return key;
}

struct Rig
{
    SimMemory mem{1ull << 30};
    MemoryHierarchy hier;
    HaloSystem halo{mem, hier};
    CoreModel core{hier, 0};
    TraceBuilder builder;
    Addr keyBase = 0;
    unsigned keySlot = 0;

    Rig()
    {
        core.setLookupEngine(&halo);
        keyBase = mem.allocate(64 * cacheLineBytes, cacheLineBytes);
    }

    Addr
    stage(const std::array<std::uint8_t, 16> &key)
    {
        const Addr a = keyBase + (keySlot++ % 64) * cacheLineBytes;
        mem.write(a, key.data(), key.size());
        hier.warmLine(a);
        return a;
    }
};

/** Software cycles/lookup over an LLC-resident table. */
double
softwareRate(Rig &rig, const CuckooHashTable &table, std::uint64_t pop,
             unsigned lookups)
{
    Xoshiro256 rng(3);
    Cycles now = 0;
    for (unsigned i = 0; i < lookups; i += 64) {
        OpTrace ops;
        for (unsigned j = 0; j < 64; ++j) {
            const auto key = keyForId(rng.nextBounded(pop));
            AccessTrace refs;
            table.lookup(KeyView(key.data(), key.size()), &refs);
            rig.builder.lowerTableOp(refs, ops);
        }
        now = rig.core.run(ops, now).endCycle;
    }
    return static_cast<double>(now) / lookups;
}

double
haloRate(Rig &rig, const CuckooHashTable &table, std::uint64_t pop,
         unsigned lookups)
{
    Xoshiro256 rng(4);
    Cycles now = 0;
    for (unsigned i = 0; i < lookups; i += 64) {
        OpTrace ops;
        for (unsigned j = 0; j < 64; ++j) {
            const auto key = keyForId(rng.nextBounded(pop));
            rig.builder.lowerLookupB(table.metadataAddr(),
                                     rig.stage(key), ops);
        }
        now = rig.core.run(ops, now).endCycle;
    }
    return static_cast<double>(now) / lookups;
}

TEST(Headlines, HaloSpeedsUpLlcResidentLookupsRoughly3x)
{
    Rig rig;
    CuckooHashTable table(rig.mem,
                          {16, 200000, HashKind::XxMix, 0x91, 0.95});
    for (std::uint64_t i = 0; i < 180000; ++i) {
        const auto key = keyForId(i);
        ASSERT_TRUE(table.insert(KeyView(key.data(), key.size()), i));
    }
    table.forEachLine([&](Addr a) { rig.hier.warmLine(a); });

    const double sw = softwareRate(rig, table, 180000, 1024);
    rig.halo.drainAll();
    const double hw = haloRate(rig, table, 180000, 1024);
    const double speedup = sw / hw;
    // Paper headline: 3.3x. Accept the 2.5-4.0 band for the small run.
    EXPECT_GT(speedup, 2.5) << "sw=" << sw << " halo=" << hw;
    EXPECT_LT(speedup, 4.0) << "sw=" << sw << " halo=" << hw;
}

TEST(Headlines, SoftwareCompetitiveOnTinyTables)
{
    Rig rig;
    CuckooHashTable table(rig.mem,
                          {16, 8, HashKind::XxMix, 0x92, 0.95});
    for (std::uint64_t i = 0; i < 8; ++i) {
        const auto key = keyForId(i);
        table.insert(KeyView(key.data(), key.size()), i);
    }
    table.forEachLine([&](Addr a) {
        rig.hier.warmLine(a, /*into_private=*/true, 0);
    });
    const double sw = softwareRate(rig, table, 8, 512);
    rig.halo.drainAll();
    const double hw = haloRate(rig, table, 8, 512);
    // Paper SS6.1: software wins below ~10 entries; our model puts the
    // two within ~25% of each other, with software at least at parity.
    EXPECT_LT(sw, hw * 1.25) << "sw=" << sw << " halo=" << hw;
}

TEST(Headlines, NonBlockingTssScalesWithTuples)
{
    // Burst-NB classification of a 10-tuple space beats the software
    // walk by a wide margin (Fig. 11 shape).
    SimMemory mem(1ull << 30);
    MemoryHierarchy hier;
    HaloSystem halo(mem, hier);
    CoreModel core(hier, 0);

    TrafficConfig tcfg;
    tcfg.numFlows = 20000;
    TrafficGenerator gen(tcfg);
    const RuleSet rules =
        deriveRules(gen.flows(), canonicalMasks(10), 10000, 5);

    auto make = [&](LookupMode mode) {
        VSwitchConfig cfg;
        cfg.mode = mode;
        cfg.useEmc = false;
        cfg.tupleConfig.tupleCapacity = 4096;
        return VirtualSwitch(mem, hier, core, &halo, cfg);
    };
    VirtualSwitch sw = make(LookupMode::Software);
    VirtualSwitch nb = make(LookupMode::HaloNonBlocking);
    sw.installRules(rules);
    nb.installRules(rules);
    sw.warmTables();
    nb.warmTables();

    Xoshiro256 rng(6);
    Cycles sw_begin = sw.now();
    for (int i = 0; i < 256; ++i) {
        FiveTuple alien; // misses walk all tuples
        alien.srcIp = 0xc0000000 + static_cast<std::uint32_t>(i);
        alien.dstIp = 0xc1000000 + static_cast<std::uint32_t>(i);
        sw.classifyTuple(alien);
    }
    const double sw_cpp =
        static_cast<double>(sw.now() - sw_begin) / 256.0;

    std::vector<FiveTuple> batch(16);
    const Cycles nb_begin = nb.now();
    for (int i = 0; i < 256; i += 16) {
        for (int b = 0; b < 16; ++b) {
            batch[b].srcIp = 0xc0000000 + static_cast<std::uint32_t>(
                                              i + b);
            batch[b].dstIp = 0xc1000000 + static_cast<std::uint32_t>(
                                              i + b);
        }
        nb.classifyBurstNB(batch);
    }
    const double nb_cpp =
        static_cast<double>(nb.now() - nb_begin) / 256.0;

    EXPECT_GT(sw_cpp / nb_cpp, 4.0)
        << "sw=" << sw_cpp << " nb=" << nb_cpp;
}

TEST(Headlines, EnergyEfficiencyHeadline)
{
    const double ratio = dynamicEfficiencyRatio(
        tcamPowerArea(1 << 20), haloAcceleratorPowerArea());
    EXPECT_NEAR(ratio, 48.2, 0.3);
}

TEST(Headlines, Table1InstructionBudget)
{
    SimMemory mem(256ull << 20);
    CuckooHashTable table(mem, {16, 4096, HashKind::XxMix, 0x93, 0.95});
    const auto key = keyForId(1);
    table.insert(KeyView(key.data(), key.size()), 1);
    AccessTrace refs;
    table.lookup(KeyView(key.data(), key.size()), &refs);
    OpTrace ops;
    TraceBuilder builder;
    builder.lowerTableOp(refs, ops);
    EXPECT_NEAR(static_cast<double>(ops.size()), 210.0, 15.0);
    OpTrace halo_ops;
    builder.lowerLookupB(table.metadataAddr(), 0x100, halo_ops);
    EXPECT_LT(halo_ops.size() * 50, ops.size());
}

TEST(Headlines, AcceleratorAvoidsPrivateCaches)
{
    // A long HALO query stream must leave the issuing core's L1/L2
    // essentially untouched (the Fig. 12 mechanism).
    Rig rig;
    CuckooHashTable table(rig.mem,
                          {16, 65536, HashKind::XxMix, 0x94, 0.95});
    for (std::uint64_t i = 0; i < 60000; ++i) {
        const auto key = keyForId(i);
        table.insert(KeyView(key.data(), key.size()), i);
    }
    table.forEachLine([&](Addr a) { rig.hier.warmLine(a); });

    const std::uint64_t l1_before =
        rig.hier.l1(0).stats().counterValue("misses");
    Xoshiro256 rng(8);
    for (int i = 0; i < 500; ++i) {
        const auto key = keyForId(rng.nextBounded(60000));
        rig.halo.rawQuery(0, table.metadataAddr(), rig.stage(key),
                          static_cast<Cycles>(i) * 500);
    }
    // rawQuery bypasses the core entirely: zero L1 pressure.
    EXPECT_EQ(rig.hier.l1(0).stats().counterValue("misses"), l1_before);
}

} // namespace
} // namespace halo
