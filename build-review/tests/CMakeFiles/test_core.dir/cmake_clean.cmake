file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_accelerator.cc.o"
  "CMakeFiles/test_core.dir/core/test_accelerator.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_coherence_bounds.cc.o"
  "CMakeFiles/test_core.dir/core/test_coherence_bounds.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_equivalence.cc.o"
  "CMakeFiles/test_core.dir/core/test_equivalence.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_flow_register.cc.o"
  "CMakeFiles/test_core.dir/core/test_flow_register.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_lookup_isa.cc.o"
  "CMakeFiles/test_core.dir/core/test_lookup_isa.cc.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
