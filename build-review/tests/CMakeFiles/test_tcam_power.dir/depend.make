# Empty dependencies file for test_tcam_power.
# This may be replaced when dependencies are built.
