file(REMOVE_RECURSE
  "CMakeFiles/test_tcam_power.dir/tcam/test_tcam_power.cc.o"
  "CMakeFiles/test_tcam_power.dir/tcam/test_tcam_power.cc.o.d"
  "test_tcam_power"
  "test_tcam_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcam_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
