file(REMOVE_RECURSE
  "CMakeFiles/test_hash.dir/hash/test_cuckoo.cc.o"
  "CMakeFiles/test_hash.dir/hash/test_cuckoo.cc.o.d"
  "CMakeFiles/test_hash.dir/hash/test_hash_fn.cc.o"
  "CMakeFiles/test_hash.dir/hash/test_hash_fn.cc.o.d"
  "CMakeFiles/test_hash.dir/hash/test_sfh.cc.o"
  "CMakeFiles/test_hash.dir/hash/test_sfh.cc.o.d"
  "test_hash"
  "test_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
