file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_event_queue.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_event_queue.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_random.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_random.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_stats.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_stats.cc.o.d"
  "test_sim"
  "test_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
