file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/test_cache.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_cache.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_hierarchy.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_hierarchy.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_sim_memory.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_sim_memory.cc.o.d"
  "test_mem"
  "test_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
