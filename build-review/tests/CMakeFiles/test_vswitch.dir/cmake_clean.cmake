file(REMOVE_RECURSE
  "CMakeFiles/test_vswitch.dir/vswitch/test_burst_nb.cc.o"
  "CMakeFiles/test_vswitch.dir/vswitch/test_burst_nb.cc.o.d"
  "CMakeFiles/test_vswitch.dir/vswitch/test_openflow_layer.cc.o"
  "CMakeFiles/test_vswitch.dir/vswitch/test_openflow_layer.cc.o.d"
  "CMakeFiles/test_vswitch.dir/vswitch/test_vswitch.cc.o"
  "CMakeFiles/test_vswitch.dir/vswitch/test_vswitch.cc.o.d"
  "test_vswitch"
  "test_vswitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vswitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
