file(REMOVE_RECURSE
  "CMakeFiles/test_flow.dir/flow/test_decision_tree.cc.o"
  "CMakeFiles/test_flow.dir/flow/test_decision_tree.cc.o.d"
  "CMakeFiles/test_flow.dir/flow/test_flow.cc.o"
  "CMakeFiles/test_flow.dir/flow/test_flow.cc.o.d"
  "test_flow"
  "test_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
