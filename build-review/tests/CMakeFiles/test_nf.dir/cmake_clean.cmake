file(REMOVE_RECURSE
  "CMakeFiles/test_nf.dir/nf/test_nf.cc.o"
  "CMakeFiles/test_nf.dir/nf/test_nf.cc.o.d"
  "test_nf"
  "test_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
