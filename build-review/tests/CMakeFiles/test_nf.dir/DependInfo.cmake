
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nf/test_nf.cc" "tests/CMakeFiles/test_nf.dir/nf/test_nf.cc.o" "gcc" "tests/CMakeFiles/test_nf.dir/nf/test_nf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/halo_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mem/CMakeFiles/halo_mem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hash/CMakeFiles/halo_hash.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cpu/CMakeFiles/halo_cpu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/halo_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/flow/CMakeFiles/halo_flow.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/halo_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tcam/CMakeFiles/halo_tcam.dir/DependInfo.cmake"
  "/root/repo/build-review/src/power/CMakeFiles/halo_power.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vswitch/CMakeFiles/halo_vswitch.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nf/CMakeFiles/halo_nf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/runtime/CMakeFiles/halo_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
