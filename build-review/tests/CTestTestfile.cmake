# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_sim "/root/repo/build-review/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;14;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mem "/root/repo/build-review/tests/test_mem")
set_tests_properties(test_mem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;19;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hash "/root/repo/build-review/tests/test_hash")
set_tests_properties(test_hash PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;24;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cpu "/root/repo/build-review/tests/test_cpu")
set_tests_properties(test_cpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;29;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_net "/root/repo/build-review/tests/test_net")
set_tests_properties(test_net PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;33;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_flow "/root/repo/build-review/tests/test_flow")
set_tests_properties(test_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;36;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build-review/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;40;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tcam_power "/root/repo/build-review/tests/test_tcam_power")
set_tests_properties(test_tcam_power PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;47;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_vswitch "/root/repo/build-review/tests/test_vswitch")
set_tests_properties(test_vswitch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;50;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_nf "/root/repo/build-review/tests/test_nf")
set_tests_properties(test_nf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;55;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build-review/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;58;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_runtime "/root/repo/build-review/tests/test_runtime")
set_tests_properties(test_runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;61;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
