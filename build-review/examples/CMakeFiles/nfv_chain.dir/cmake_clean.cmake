file(REMOVE_RECURSE
  "CMakeFiles/nfv_chain.dir/nfv_chain.cpp.o"
  "CMakeFiles/nfv_chain.dir/nfv_chain.cpp.o.d"
  "nfv_chain"
  "nfv_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
