# Empty dependencies file for nfv_chain.
# This may be replaced when dependencies are built.
