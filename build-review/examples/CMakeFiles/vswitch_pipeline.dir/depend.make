# Empty dependencies file for vswitch_pipeline.
# This may be replaced when dependencies are built.
