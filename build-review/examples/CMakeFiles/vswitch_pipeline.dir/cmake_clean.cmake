file(REMOVE_RECURSE
  "CMakeFiles/vswitch_pipeline.dir/vswitch_pipeline.cpp.o"
  "CMakeFiles/vswitch_pipeline.dir/vswitch_pipeline.cpp.o.d"
  "vswitch_pipeline"
  "vswitch_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vswitch_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
