file(REMOVE_RECURSE
  "CMakeFiles/runtime_demo.dir/runtime_demo.cpp.o"
  "CMakeFiles/runtime_demo.dir/runtime_demo.cpp.o.d"
  "runtime_demo"
  "runtime_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
