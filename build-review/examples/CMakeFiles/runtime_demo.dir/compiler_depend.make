# Empty compiler generated dependencies file for runtime_demo.
# This may be replaced when dependencies are built.
