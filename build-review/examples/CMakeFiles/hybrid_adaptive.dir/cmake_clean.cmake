file(REMOVE_RECURSE
  "CMakeFiles/hybrid_adaptive.dir/hybrid_adaptive.cpp.o"
  "CMakeFiles/hybrid_adaptive.dir/hybrid_adaptive.cpp.o.d"
  "hybrid_adaptive"
  "hybrid_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
