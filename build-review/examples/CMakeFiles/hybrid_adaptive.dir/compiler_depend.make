# Empty compiler generated dependencies file for hybrid_adaptive.
# This may be replaced when dependencies are built.
