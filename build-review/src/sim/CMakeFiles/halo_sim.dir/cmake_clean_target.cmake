file(REMOVE_RECURSE
  "libhalo_sim.a"
)
