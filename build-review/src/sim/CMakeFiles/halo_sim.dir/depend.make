# Empty dependencies file for halo_sim.
# This may be replaced when dependencies are built.
