file(REMOVE_RECURSE
  "CMakeFiles/halo_sim.dir/random.cc.o"
  "CMakeFiles/halo_sim.dir/random.cc.o.d"
  "CMakeFiles/halo_sim.dir/stats.cc.o"
  "CMakeFiles/halo_sim.dir/stats.cc.o.d"
  "libhalo_sim.a"
  "libhalo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
