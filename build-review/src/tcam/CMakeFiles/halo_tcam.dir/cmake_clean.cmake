file(REMOVE_RECURSE
  "CMakeFiles/halo_tcam.dir/tcam.cc.o"
  "CMakeFiles/halo_tcam.dir/tcam.cc.o.d"
  "libhalo_tcam.a"
  "libhalo_tcam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_tcam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
