# Empty dependencies file for halo_tcam.
# This may be replaced when dependencies are built.
