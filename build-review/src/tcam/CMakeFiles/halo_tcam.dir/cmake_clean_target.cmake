file(REMOVE_RECURSE
  "libhalo_tcam.a"
)
