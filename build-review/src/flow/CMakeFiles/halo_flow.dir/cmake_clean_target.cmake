file(REMOVE_RECURSE
  "libhalo_flow.a"
)
