# Empty dependencies file for halo_flow.
# This may be replaced when dependencies are built.
