file(REMOVE_RECURSE
  "CMakeFiles/halo_flow.dir/decision_tree.cc.o"
  "CMakeFiles/halo_flow.dir/decision_tree.cc.o.d"
  "CMakeFiles/halo_flow.dir/emc.cc.o"
  "CMakeFiles/halo_flow.dir/emc.cc.o.d"
  "CMakeFiles/halo_flow.dir/ruleset.cc.o"
  "CMakeFiles/halo_flow.dir/ruleset.cc.o.d"
  "CMakeFiles/halo_flow.dir/tuple_space.cc.o"
  "CMakeFiles/halo_flow.dir/tuple_space.cc.o.d"
  "libhalo_flow.a"
  "libhalo_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
