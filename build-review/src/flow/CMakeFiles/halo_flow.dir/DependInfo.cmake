
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/decision_tree.cc" "src/flow/CMakeFiles/halo_flow.dir/decision_tree.cc.o" "gcc" "src/flow/CMakeFiles/halo_flow.dir/decision_tree.cc.o.d"
  "/root/repo/src/flow/emc.cc" "src/flow/CMakeFiles/halo_flow.dir/emc.cc.o" "gcc" "src/flow/CMakeFiles/halo_flow.dir/emc.cc.o.d"
  "/root/repo/src/flow/ruleset.cc" "src/flow/CMakeFiles/halo_flow.dir/ruleset.cc.o" "gcc" "src/flow/CMakeFiles/halo_flow.dir/ruleset.cc.o.d"
  "/root/repo/src/flow/tuple_space.cc" "src/flow/CMakeFiles/halo_flow.dir/tuple_space.cc.o" "gcc" "src/flow/CMakeFiles/halo_flow.dir/tuple_space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/halo_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mem/CMakeFiles/halo_mem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hash/CMakeFiles/halo_hash.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/halo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
