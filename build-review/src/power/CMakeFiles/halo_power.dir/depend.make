# Empty dependencies file for halo_power.
# This may be replaced when dependencies are built.
