file(REMOVE_RECURSE
  "CMakeFiles/halo_power.dir/power_model.cc.o"
  "CMakeFiles/halo_power.dir/power_model.cc.o.d"
  "libhalo_power.a"
  "libhalo_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
