file(REMOVE_RECURSE
  "libhalo_power.a"
)
