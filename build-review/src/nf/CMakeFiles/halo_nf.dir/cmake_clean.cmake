file(REMOVE_RECURSE
  "CMakeFiles/halo_nf.dir/acl.cc.o"
  "CMakeFiles/halo_nf.dir/acl.cc.o.d"
  "CMakeFiles/halo_nf.dir/mtcp_lite.cc.o"
  "CMakeFiles/halo_nf.dir/mtcp_lite.cc.o.d"
  "CMakeFiles/halo_nf.dir/nat.cc.o"
  "CMakeFiles/halo_nf.dir/nat.cc.o.d"
  "CMakeFiles/halo_nf.dir/packet_filter.cc.o"
  "CMakeFiles/halo_nf.dir/packet_filter.cc.o.d"
  "CMakeFiles/halo_nf.dir/prads.cc.o"
  "CMakeFiles/halo_nf.dir/prads.cc.o.d"
  "CMakeFiles/halo_nf.dir/snort_lite.cc.o"
  "CMakeFiles/halo_nf.dir/snort_lite.cc.o.d"
  "libhalo_nf.a"
  "libhalo_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
