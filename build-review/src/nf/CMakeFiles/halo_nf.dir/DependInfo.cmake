
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nf/acl.cc" "src/nf/CMakeFiles/halo_nf.dir/acl.cc.o" "gcc" "src/nf/CMakeFiles/halo_nf.dir/acl.cc.o.d"
  "/root/repo/src/nf/mtcp_lite.cc" "src/nf/CMakeFiles/halo_nf.dir/mtcp_lite.cc.o" "gcc" "src/nf/CMakeFiles/halo_nf.dir/mtcp_lite.cc.o.d"
  "/root/repo/src/nf/nat.cc" "src/nf/CMakeFiles/halo_nf.dir/nat.cc.o" "gcc" "src/nf/CMakeFiles/halo_nf.dir/nat.cc.o.d"
  "/root/repo/src/nf/packet_filter.cc" "src/nf/CMakeFiles/halo_nf.dir/packet_filter.cc.o" "gcc" "src/nf/CMakeFiles/halo_nf.dir/packet_filter.cc.o.d"
  "/root/repo/src/nf/prads.cc" "src/nf/CMakeFiles/halo_nf.dir/prads.cc.o" "gcc" "src/nf/CMakeFiles/halo_nf.dir/prads.cc.o.d"
  "/root/repo/src/nf/snort_lite.cc" "src/nf/CMakeFiles/halo_nf.dir/snort_lite.cc.o" "gcc" "src/nf/CMakeFiles/halo_nf.dir/snort_lite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/halo_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mem/CMakeFiles/halo_mem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hash/CMakeFiles/halo_hash.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cpu/CMakeFiles/halo_cpu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/halo_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/halo_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/flow/CMakeFiles/halo_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
