file(REMOVE_RECURSE
  "libhalo_nf.a"
)
