# Empty dependencies file for halo_nf.
# This may be replaced when dependencies are built.
