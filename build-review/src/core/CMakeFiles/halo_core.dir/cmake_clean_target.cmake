file(REMOVE_RECURSE
  "libhalo_core.a"
)
