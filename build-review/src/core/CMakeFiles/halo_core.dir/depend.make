# Empty dependencies file for halo_core.
# This may be replaced when dependencies are built.
