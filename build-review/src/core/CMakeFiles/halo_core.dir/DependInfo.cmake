
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accelerator.cc" "src/core/CMakeFiles/halo_core.dir/accelerator.cc.o" "gcc" "src/core/CMakeFiles/halo_core.dir/accelerator.cc.o.d"
  "/root/repo/src/core/distributor.cc" "src/core/CMakeFiles/halo_core.dir/distributor.cc.o" "gcc" "src/core/CMakeFiles/halo_core.dir/distributor.cc.o.d"
  "/root/repo/src/core/flow_register.cc" "src/core/CMakeFiles/halo_core.dir/flow_register.cc.o" "gcc" "src/core/CMakeFiles/halo_core.dir/flow_register.cc.o.d"
  "/root/repo/src/core/halo_system.cc" "src/core/CMakeFiles/halo_core.dir/halo_system.cc.o" "gcc" "src/core/CMakeFiles/halo_core.dir/halo_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/halo_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mem/CMakeFiles/halo_mem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hash/CMakeFiles/halo_hash.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cpu/CMakeFiles/halo_cpu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/flow/CMakeFiles/halo_flow.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/halo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
