file(REMOVE_RECURSE
  "CMakeFiles/halo_core.dir/accelerator.cc.o"
  "CMakeFiles/halo_core.dir/accelerator.cc.o.d"
  "CMakeFiles/halo_core.dir/distributor.cc.o"
  "CMakeFiles/halo_core.dir/distributor.cc.o.d"
  "CMakeFiles/halo_core.dir/flow_register.cc.o"
  "CMakeFiles/halo_core.dir/flow_register.cc.o.d"
  "CMakeFiles/halo_core.dir/halo_system.cc.o"
  "CMakeFiles/halo_core.dir/halo_system.cc.o.d"
  "libhalo_core.a"
  "libhalo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
