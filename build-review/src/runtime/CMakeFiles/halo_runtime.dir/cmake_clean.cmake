file(REMOVE_RECURSE
  "CMakeFiles/halo_runtime.dir/rss.cc.o"
  "CMakeFiles/halo_runtime.dir/rss.cc.o.d"
  "CMakeFiles/halo_runtime.dir/runtime.cc.o"
  "CMakeFiles/halo_runtime.dir/runtime.cc.o.d"
  "CMakeFiles/halo_runtime.dir/worker.cc.o"
  "CMakeFiles/halo_runtime.dir/worker.cc.o.d"
  "libhalo_runtime.a"
  "libhalo_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
