file(REMOVE_RECURSE
  "libhalo_runtime.a"
)
