# Empty dependencies file for halo_runtime.
# This may be replaced when dependencies are built.
