# Empty dependencies file for halo_hash.
# This may be replaced when dependencies are built.
