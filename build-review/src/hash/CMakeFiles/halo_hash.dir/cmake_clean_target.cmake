file(REMOVE_RECURSE
  "libhalo_hash.a"
)
