
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/cuckoo_table.cc" "src/hash/CMakeFiles/halo_hash.dir/cuckoo_table.cc.o" "gcc" "src/hash/CMakeFiles/halo_hash.dir/cuckoo_table.cc.o.d"
  "/root/repo/src/hash/hash_fn.cc" "src/hash/CMakeFiles/halo_hash.dir/hash_fn.cc.o" "gcc" "src/hash/CMakeFiles/halo_hash.dir/hash_fn.cc.o.d"
  "/root/repo/src/hash/sfh_table.cc" "src/hash/CMakeFiles/halo_hash.dir/sfh_table.cc.o" "gcc" "src/hash/CMakeFiles/halo_hash.dir/sfh_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/halo_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mem/CMakeFiles/halo_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
