file(REMOVE_RECURSE
  "CMakeFiles/halo_hash.dir/cuckoo_table.cc.o"
  "CMakeFiles/halo_hash.dir/cuckoo_table.cc.o.d"
  "CMakeFiles/halo_hash.dir/hash_fn.cc.o"
  "CMakeFiles/halo_hash.dir/hash_fn.cc.o.d"
  "CMakeFiles/halo_hash.dir/sfh_table.cc.o"
  "CMakeFiles/halo_hash.dir/sfh_table.cc.o.d"
  "libhalo_hash.a"
  "libhalo_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
