file(REMOVE_RECURSE
  "CMakeFiles/halo_net.dir/headers.cc.o"
  "CMakeFiles/halo_net.dir/headers.cc.o.d"
  "CMakeFiles/halo_net.dir/packet.cc.o"
  "CMakeFiles/halo_net.dir/packet.cc.o.d"
  "CMakeFiles/halo_net.dir/traffic_gen.cc.o"
  "CMakeFiles/halo_net.dir/traffic_gen.cc.o.d"
  "libhalo_net.a"
  "libhalo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
