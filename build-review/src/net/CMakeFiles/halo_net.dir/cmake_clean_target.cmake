file(REMOVE_RECURSE
  "libhalo_net.a"
)
