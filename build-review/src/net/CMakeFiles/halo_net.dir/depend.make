# Empty dependencies file for halo_net.
# This may be replaced when dependencies are built.
