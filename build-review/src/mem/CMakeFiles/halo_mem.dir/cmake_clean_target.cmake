file(REMOVE_RECURSE
  "libhalo_mem.a"
)
