# Empty dependencies file for halo_mem.
# This may be replaced when dependencies are built.
