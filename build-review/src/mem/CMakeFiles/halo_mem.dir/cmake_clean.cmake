file(REMOVE_RECURSE
  "CMakeFiles/halo_mem.dir/cache.cc.o"
  "CMakeFiles/halo_mem.dir/cache.cc.o.d"
  "CMakeFiles/halo_mem.dir/dram.cc.o"
  "CMakeFiles/halo_mem.dir/dram.cc.o.d"
  "CMakeFiles/halo_mem.dir/hierarchy.cc.o"
  "CMakeFiles/halo_mem.dir/hierarchy.cc.o.d"
  "libhalo_mem.a"
  "libhalo_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
