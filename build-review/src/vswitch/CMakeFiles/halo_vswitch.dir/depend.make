# Empty dependencies file for halo_vswitch.
# This may be replaced when dependencies are built.
