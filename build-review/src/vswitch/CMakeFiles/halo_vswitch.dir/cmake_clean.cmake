file(REMOVE_RECURSE
  "CMakeFiles/halo_vswitch.dir/shard.cc.o"
  "CMakeFiles/halo_vswitch.dir/shard.cc.o.d"
  "CMakeFiles/halo_vswitch.dir/vswitch.cc.o"
  "CMakeFiles/halo_vswitch.dir/vswitch.cc.o.d"
  "libhalo_vswitch.a"
  "libhalo_vswitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_vswitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
