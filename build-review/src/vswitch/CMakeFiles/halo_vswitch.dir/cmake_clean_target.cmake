file(REMOVE_RECURSE
  "libhalo_vswitch.a"
)
