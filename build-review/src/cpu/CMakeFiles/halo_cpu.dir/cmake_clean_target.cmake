file(REMOVE_RECURSE
  "libhalo_cpu.a"
)
