# Empty dependencies file for halo_cpu.
# This may be replaced when dependencies are built.
