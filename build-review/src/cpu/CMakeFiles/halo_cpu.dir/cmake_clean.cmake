file(REMOVE_RECURSE
  "CMakeFiles/halo_cpu.dir/core_model.cc.o"
  "CMakeFiles/halo_cpu.dir/core_model.cc.o.d"
  "CMakeFiles/halo_cpu.dir/trace_builder.cc.o"
  "CMakeFiles/halo_cpu.dir/trace_builder.cc.o.d"
  "libhalo_cpu.a"
  "libhalo_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
