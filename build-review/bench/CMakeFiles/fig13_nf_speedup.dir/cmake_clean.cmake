file(REMOVE_RECURSE
  "CMakeFiles/fig13_nf_speedup.dir/fig13_nf_speedup.cc.o"
  "CMakeFiles/fig13_nf_speedup.dir/fig13_nf_speedup.cc.o.d"
  "fig13_nf_speedup"
  "fig13_nf_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_nf_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
