file(REMOVE_RECURSE
  "CMakeFiles/fig11_tuple_space.dir/fig11_tuple_space.cc.o"
  "CMakeFiles/fig11_tuple_space.dir/fig11_tuple_space.cc.o.d"
  "fig11_tuple_space"
  "fig11_tuple_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tuple_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
