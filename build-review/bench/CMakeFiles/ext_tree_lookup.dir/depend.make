# Empty dependencies file for ext_tree_lookup.
# This may be replaced when dependencies are built.
