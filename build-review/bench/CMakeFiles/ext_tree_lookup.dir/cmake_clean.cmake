file(REMOVE_RECURSE
  "CMakeFiles/ext_tree_lookup.dir/ext_tree_lookup.cc.o"
  "CMakeFiles/ext_tree_lookup.dir/ext_tree_lookup.cc.o.d"
  "ext_tree_lookup"
  "ext_tree_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tree_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
