file(REMOVE_RECURSE
  "CMakeFiles/abl_metadata_cache.dir/abl_metadata_cache.cc.o"
  "CMakeFiles/abl_metadata_cache.dir/abl_metadata_cache.cc.o.d"
  "abl_metadata_cache"
  "abl_metadata_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_metadata_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
