# Empty compiler generated dependencies file for abl_metadata_cache.
# This may be replaced when dependencies are built.
