# Empty compiler generated dependencies file for table1_instructions.
# This may be replaced when dependencies are built.
