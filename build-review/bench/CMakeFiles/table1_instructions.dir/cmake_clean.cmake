file(REMOVE_RECURSE
  "CMakeFiles/table1_instructions.dir/table1_instructions.cc.o"
  "CMakeFiles/table1_instructions.dir/table1_instructions.cc.o.d"
  "table1_instructions"
  "table1_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
