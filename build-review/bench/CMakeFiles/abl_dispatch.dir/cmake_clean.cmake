file(REMOVE_RECURSE
  "CMakeFiles/abl_dispatch.dir/abl_dispatch.cc.o"
  "CMakeFiles/abl_dispatch.dir/abl_dispatch.cc.o.d"
  "abl_dispatch"
  "abl_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
