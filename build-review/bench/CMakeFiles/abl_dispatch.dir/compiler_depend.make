# Empty compiler generated dependencies file for abl_dispatch.
# This may be replaced when dependencies are built.
