file(REMOVE_RECURSE
  "CMakeFiles/fig09_single_lookup.dir/fig09_single_lookup.cc.o"
  "CMakeFiles/fig09_single_lookup.dir/fig09_single_lookup.cc.o.d"
  "fig09_single_lookup"
  "fig09_single_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_single_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
