# Empty dependencies file for fig12_collocation.
# This may be replaced when dependencies are built.
