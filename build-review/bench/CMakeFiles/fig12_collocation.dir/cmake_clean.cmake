file(REMOVE_RECURSE
  "CMakeFiles/fig12_collocation.dir/fig12_collocation.cc.o"
  "CMakeFiles/fig12_collocation.dir/fig12_collocation.cc.o.d"
  "fig12_collocation"
  "fig12_collocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_collocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
