file(REMOVE_RECURSE
  "CMakeFiles/fig08_flow_register.dir/fig08_flow_register.cc.o"
  "CMakeFiles/fig08_flow_register.dir/fig08_flow_register.cc.o.d"
  "fig08_flow_register"
  "fig08_flow_register.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_flow_register.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
