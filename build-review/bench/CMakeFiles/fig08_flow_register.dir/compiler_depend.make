# Empty compiler generated dependencies file for fig08_flow_register.
# This may be replaced when dependencies are built.
