file(REMOVE_RECURSE
  "libhalo_bench_common.a"
)
