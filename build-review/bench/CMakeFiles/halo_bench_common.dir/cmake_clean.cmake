file(REMOVE_RECURSE
  "CMakeFiles/halo_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/halo_bench_common.dir/bench_common.cc.o.d"
  "libhalo_bench_common.a"
  "libhalo_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
