# Empty compiler generated dependencies file for halo_bench_common.
# This may be replaced when dependencies are built.
