file(REMOVE_RECURSE
  "CMakeFiles/fig04_hash_cache.dir/fig04_hash_cache.cc.o"
  "CMakeFiles/fig04_hash_cache.dir/fig04_hash_cache.cc.o.d"
  "fig04_hash_cache"
  "fig04_hash_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_hash_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
