# Empty dependencies file for fig04_hash_cache.
# This may be replaced when dependencies are built.
