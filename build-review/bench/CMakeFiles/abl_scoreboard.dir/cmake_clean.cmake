file(REMOVE_RECURSE
  "CMakeFiles/abl_scoreboard.dir/abl_scoreboard.cc.o"
  "CMakeFiles/abl_scoreboard.dir/abl_scoreboard.cc.o.d"
  "abl_scoreboard"
  "abl_scoreboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scoreboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
