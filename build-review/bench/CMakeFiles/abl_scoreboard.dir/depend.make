# Empty dependencies file for abl_scoreboard.
# This may be replaced when dependencies are built.
