file(REMOVE_RECURSE
  "CMakeFiles/multiworker_throughput.dir/multiworker_throughput.cc.o"
  "CMakeFiles/multiworker_throughput.dir/multiworker_throughput.cc.o.d"
  "multiworker_throughput"
  "multiworker_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiworker_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
