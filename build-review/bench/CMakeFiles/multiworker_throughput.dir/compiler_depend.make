# Empty compiler generated dependencies file for multiworker_throughput.
# This may be replaced when dependencies are built.
