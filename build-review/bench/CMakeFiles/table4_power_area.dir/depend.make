# Empty dependencies file for table4_power_area.
# This may be replaced when dependencies are built.
