file(REMOVE_RECURSE
  "CMakeFiles/table4_power_area.dir/table4_power_area.cc.o"
  "CMakeFiles/table4_power_area.dir/table4_power_area.cc.o.d"
  "table4_power_area"
  "table4_power_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_power_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
