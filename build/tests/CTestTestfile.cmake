# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;13;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mem "/root/repo/build/tests/test_mem")
set_tests_properties(test_mem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;18;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hash "/root/repo/build/tests/test_hash")
set_tests_properties(test_hash PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;23;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cpu "/root/repo/build/tests/test_cpu")
set_tests_properties(test_cpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;28;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_net "/root/repo/build/tests/test_net")
set_tests_properties(test_net PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;32;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_flow "/root/repo/build/tests/test_flow")
set_tests_properties(test_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;35;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;39;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tcam_power "/root/repo/build/tests/test_tcam_power")
set_tests_properties(test_tcam_power PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;46;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_vswitch "/root/repo/build/tests/test_vswitch")
set_tests_properties(test_vswitch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;49;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_nf "/root/repo/build/tests/test_nf")
set_tests_properties(test_nf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;54;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;57;halo_add_test;/root/repo/tests/CMakeLists.txt;0;")
