
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_net.cc" "tests/CMakeFiles/test_net.dir/net/test_net.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_net.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/halo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/halo_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/halo_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/halo_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/halo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/halo_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/halo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/halo_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/halo_power.dir/DependInfo.cmake"
  "/root/repo/build/src/vswitch/CMakeFiles/halo_vswitch.dir/DependInfo.cmake"
  "/root/repo/build/src/nf/CMakeFiles/halo_nf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
