/**
 * @file
 * NFV service-chain example: packets traverse packet-filter -> NAT ->
 * asset detection (prads), each a hash-table-backed network function.
 * The chain runs once with software lookups and once with HALO
 * LOOKUP_B offload (paper SS4.8 / Fig. 13).
 *
 *   $ ./build/examples/nfv_chain
 */

#include <cstdio>

#include "core/halo_system.hh"
#include "cpu/core_model.hh"
#include "net/traffic_gen.hh"
#include "nf/nat.hh"
#include "nf/packet_filter.hh"
#include "nf/prads.hh"

using namespace halo;

namespace {

double
runChain(NfEngine engine, const char *label)
{
    SimMemory mem(2ull << 30);
    MemoryHierarchy hier;
    HaloSystem halo_sys(mem, hier);
    CoreModel core(hier, 0);
    core.setLookupEngine(&halo_sys);

    TrafficGenerator gen(TrafficConfig{20000, 0.5, 0.5, 0xc8a1});

    PacketFilter filter(mem, hier, {2000, engine, 0x1});
    filter.installRulesFrom(gen.flows(), 0.05);
    NatFunction nat(mem, hier, {20000, engine, 0xc6336401});
    PradsLite prads(mem, hier, {20000, engine});

    filter.warm();
    nat.warm();
    prads.warm();

    constexpr unsigned packets = 4000;
    constexpr unsigned burst = 8;
    Cycles now = 0;
    for (unsigned i = 0; i < packets; i += burst) {
        OpTrace ops;
        for (unsigned b = 0; b < burst; ++b) {
            const Packet pkt = Packet::fromTuple(gen.nextTuple());
            const auto parsed = pkt.parseHeaders();
            if (!parsed)
                continue;
            filter.process(*parsed, pkt, ops);
            // Dropped packets leave the chain early.
            const auto key = parsed->tuple().toKey();
            if (filter.ruleTable().lookup(KeyView(key.data(),
                                                  key.size())))
                continue;
            nat.process(*parsed, pkt, ops);
            prads.process(*parsed, pkt, ops);
        }
        now = core.run(ops, now).endCycle;
    }

    const double cpp = static_cast<double>(now) / packets;
    std::printf("[%s]\n", label);
    std::printf("  %8.1f cycles/packet through the chain\n", cpp);
    std::printf("  filter: %llu dropped / %llu passed\n",
                static_cast<unsigned long long>(filter.dropped()),
                static_cast<unsigned long long>(filter.passed()));
    std::printf("  nat:    %llu bindings, %llu fast-path hits\n",
                static_cast<unsigned long long>(
                    nat.bindingsAllocated()),
                static_cast<unsigned long long>(nat.translationHits()));
    std::printf("  prads:  %llu assets, %llu sighting updates\n",
                static_cast<unsigned long long>(
                    prads.assetsDiscovered()),
                static_cast<unsigned long long>(
                    prads.sightingUpdates()));
    return cpp;
}

} // namespace

int
main()
{
    std::printf("NFV service chain: packet filter -> NAT -> prads "
                "(20K flows)\n\n");
    const double sw = runChain(NfEngine::Software, "software lookups");
    const double hw = runChain(NfEngine::Halo, "HALO LOOKUP_B offload");
    std::printf("\nchain speedup with HALO: %.2fx\n", sw / hw);
    return 0;
}
