/**
 * @file
 * MemC3-style key-value store example (paper SS4.8: "MemC3 applied
 * exactly the same cuckoo hash table described in this paper to
 * memcached"). GET requests are served either by the software cuckoo
 * lookup or by a HALO LOOKUP_B; SETs always run in software.
 *
 *   $ ./build/examples/kv_store
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/halo_system.hh"
#include "cpu/core_model.hh"
#include "cpu/trace_builder.hh"
#include "hash/cuckoo_table.hh"
#include "sim/random.hh"

using namespace halo;

namespace {

/** A tiny memcached: string keys (padded to 32 B), 8-byte values. */
class KvStore
{
  public:
    KvStore(SimMemory &memory, MemoryHierarchy &hierarchy,
            std::uint64_t capacity)
        : mem(memory),
          hier(hierarchy),
          index(memory, {32, capacity, HashKind::Crc32c, 0x6b76,
                         0.95})
    {
        keyStage = mem.allocate(16 * cacheLineBytes, cacheLineBytes);
    }

    static std::array<std::uint8_t, 32>
    padKey(const std::string &key)
    {
        std::array<std::uint8_t, 32> padded{};
        std::memcpy(padded.data(), key.data(),
                    std::min<std::size_t>(key.size(), 32));
        return padded;
    }

    bool
    set(const std::string &key, std::uint64_t value, OpTrace &ops,
        TraceBuilder &builder)
    {
        const auto padded = padKey(key);
        AccessTrace refs;
        const bool ok =
            index.insert(KeyView(padded.data(), padded.size()), value,
                         &refs);
        builder.lowerTableOp(refs, ops);
        return ok;
    }

    std::optional<std::uint64_t>
    get(const std::string &key, bool use_halo, OpTrace &ops,
        TraceBuilder &builder)
    {
        const auto padded = padKey(key);
        if (!use_halo) {
            AccessTrace refs;
            const auto v =
                index.lookup(KeyView(padded.data(), padded.size()),
                             &refs);
            builder.lowerTableOp(refs, ops);
            return v;
        }
        const Addr staged =
            keyStage + (stageNext++ % 16) * cacheLineBytes;
        mem.write(staged, padded.data(), padded.size());
        hier.warmLine(staged);
        builder.lowerCompute(2, 2, 1, ops);
        builder.lowerLookupB(index.metadataAddr(), staged, ops);
        return index.lookup(KeyView(padded.data(), padded.size()));
    }

    CuckooHashTable &table() { return index; }

  private:
    SimMemory &mem;
    MemoryHierarchy &hier;
    CuckooHashTable index;
    Addr keyStage = invalidAddr;
    unsigned stageNext = 0;
};

} // namespace

int
main()
{
    SimMemory mem(1ull << 30);
    MemoryHierarchy hier;
    HaloSystem halo_sys(mem, hier);
    CoreModel core(hier, 0);
    core.setLookupEngine(&halo_sys);
    TraceBuilder builder;

    KvStore store(mem, hier, 200000);

    // Populate 150K objects.
    std::printf("populating 150K objects...\n");
    {
        OpTrace ops;
        for (int i = 0; i < 150000; ++i) {
            store.set("object:" + std::to_string(i),
                      0xa100000000ull + static_cast<std::uint64_t>(i), ops,
                      builder);
            if (ops.size() > 200000) {
                core.run(ops);
                ops.clear();
            }
        }
        core.run(ops);
    }
    store.table().forEachLine([&](Addr a) { hier.warmLine(a); });

    // 95/5 GET/SET mix, Zipf-popular keys (a memcached-like load).
    Xoshiro256 rng(77);
    ZipfDistribution zipf(150000, 0.99);
    for (const bool use_halo : {false, true}) {
        Cycles now = 0;
        std::uint64_t gets = 0, hits = 0;
        constexpr int requests = 8000;
        for (int i = 0; i < requests; i += 32) {
            OpTrace ops;
            for (int j = 0; j < 32; ++j) {
                const std::string key =
                    "object:" + std::to_string(zipf.sample(rng));
                if (rng.nextBool(0.05)) {
                    store.set(key, rng.next() | 1, ops, builder);
                } else {
                    ++gets;
                    hits += store.get(key, use_halo, ops, builder)
                                .has_value()
                                ? 1
                                : 0;
                }
            }
            now = core.run(ops, now).endCycle;
        }
        std::printf("[%s] %.1f cycles/request, GET hit rate %.1f%%\n",
                    use_halo ? "HALO GETs    " : "software GETs",
                    static_cast<double>(now) / requests,
                    100.0 * static_cast<double>(hits) /
                        static_cast<double>(gets));
        halo_sys.drainAll();
    }
    std::printf("(paper SS4.8: the same cuckoo table is MemC3's "
                "memcached index — HALO applies unchanged)\n");
    return 0;
}
