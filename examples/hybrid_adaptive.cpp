/**
 * @file
 * Hybrid-mode example: traffic alternates between a quiet phase (a few
 * elephant flows) and a busy phase (tens of thousands of flows). The
 * linear-counting flow register tracks the active-flow count each
 * window and the datapath switches between software and HALO lookups
 * accordingly (paper SS4.6).
 *
 *   $ ./build/examples/hybrid_adaptive
 */

#include <cstdio>

#include "flow/ruleset.hh"
#include "vswitch/vswitch.hh"

using namespace halo;

int
main()
{
    SimMemory mem(2ull << 30);
    MemoryHierarchy hier;
    HaloSystem halo_sys(mem, hier);
    CoreModel core(hier, 0);

    // Busy-phase population; the quiet phase reuses its first 6 flows.
    TrafficGenerator busy(TrafficGenerator::scenarioConfig(
        TrafficScenario::ManyFlows, 30000));
    const RuleSet rules =
        scenarioRules(TrafficScenario::ManyFlows, busy.flows(), 0x42);

    VSwitchConfig cfg;
    cfg.mode = LookupMode::Hybrid;
    cfg.useEmc = false;
    cfg.tupleConfig.tupleCapacity =
        nextPowerOfTwo(maxRulesPerMask(rules) + 64);
    VirtualSwitch vs(mem, hier, core, &halo_sys, cfg);
    vs.installRules(rules);
    vs.warmTables();

    std::printf("phase-aware hybrid datapath "
                "(window=%llu queries, threshold=%.0f flows)\n\n",
                static_cast<unsigned long long>(
                    halo_sys.hybrid().config().windowQueries),
                halo_sys.hybrid().config().flowThreshold);
    std::printf("%-10s %10s %12s %14s %12s\n", "phase", "packets",
                "est. flows", "mode", "cyc/pkt");

    Xoshiro256 rng(1);
    for (int phase = 0; phase < 6; ++phase) {
        const bool quiet = phase % 2 == 0;
        const Cycles begin = vs.now();
        constexpr unsigned packets = 3000;
        for (unsigned i = 0; i < packets; ++i) {
            const FiveTuple &t =
                quiet ? busy.flows()[rng.nextBounded(6)]
                      : busy.nextTuple();
            vs.classifyTuple(t);
        }
        const double cpp =
            static_cast<double>(vs.now() - begin) / packets;
        std::printf("%-10s %10u %12.1f %14s %12.1f\n",
                    quiet ? "quiet" : "busy", packets,
                    halo_sys.hybrid().estimate(),
                    vs.effectiveMode() == LookupMode::Software
                        ? "software"
                        : "halo",
                    cpp);
    }

    std::printf("\nthe register estimate rises and falls with the "
                "phases, and the datapath follows (paper SS4.6)\n");
    return 0;
}
