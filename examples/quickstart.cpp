/**
 * @file
 * Quickstart: build a simulated machine, create a flow table, and
 * compare one software lookup against one HALO-accelerated lookup.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>

#include "core/halo_system.hh"
#include "cpu/core_model.hh"
#include "cpu/trace_builder.hh"
#include "hash/cuckoo_table.hh"

using namespace halo;

int
main()
{
    // 1. A simulated machine: memory, the Table-2 cache hierarchy, the
    //    HALO accelerator complex (one accelerator per LLC slice), and
    //    one out-of-order core wired to it.
    SimMemory mem(256ull << 20);
    MemoryHierarchy hier;
    HaloSystem halo_sys(mem, hier);
    CoreModel core(hier, /*core_id=*/0);
    core.setLookupEngine(&halo_sys);
    TraceBuilder builder;

    // 2. A DPDK-style cuckoo flow table living in simulated memory.
    CuckooHashTable table(
        mem, {/*keyLen=*/16, /*capacity=*/100000, HashKind::XxMix,
              /*seed=*/42, /*maxLoadFactor=*/0.95});

    std::uint8_t key[16] = {1, 2, 3, 4, 5, 6, 7, 8};
    table.insert(KeyView(key, 16), /*value=*/777);
    std::printf("installed %llu flow(s); table footprint %llu KiB\n",
                static_cast<unsigned long long>(table.size()),
                static_cast<unsigned long long>(
                    table.footprintBytes() >> 10));

    // Warm the table into the LLC, as a running switch would have.
    table.forEachLine([&](Addr a) { hier.warmLine(a); });

    // 3. Software lookup: the functional operation records its memory
    //    references; the trace builder lowers them to ~210 micro-ops
    //    (paper Table 1); the core model prices them.
    AccessTrace refs;
    const auto sw_value = table.lookup(KeyView(key, 16), &refs);
    OpTrace sw_ops;
    builder.lowerTableOp(refs, sw_ops);
    const RunResult sw = core.run(sw_ops);
    std::printf("software lookup: value=%llu, %zu instructions, "
                "%llu cycles\n",
                static_cast<unsigned long long>(sw_value.value_or(0)),
                sw_ops.size(),
                static_cast<unsigned long long>(sw.elapsed()));

    // 4. HALO lookup: stage the key in simulated memory (streaming
    //    store) and issue a single LOOKUP_B instruction. The query is
    //    dispatched to the accelerator at the table's home CHA, which
    //    performs the whole cuckoo walk next to the LLC.
    const Addr key_addr = mem.allocate(cacheLineBytes, cacheLineBytes);
    mem.write(key_addr, key, 16);
    hier.warmLine(key_addr);

    OpTrace halo_ops;
    builder.lowerLookupB(table.metadataAddr(), key_addr, halo_ops);
    const RunResult hw = core.run(halo_ops);
    std::printf("HALO LOOKUP_B:   %zu instructions, %llu cycles\n",
                halo_ops.size(),
                static_cast<unsigned long long>(hw.elapsed()));

    // 5. The accelerator's own view of the same query (per-phase
    //    breakdown, Fig. 10).
    const QueryResult qr =
        halo_sys.rawQuery(0, table.metadataAddr(), key_addr, 0);
    std::printf("accelerator breakdown: metadata=%llu key=%llu "
                "compute=%llu data=%llu locking=%llu (found=%d, "
                "value=%llu)\n",
                static_cast<unsigned long long>(qr.breakdown.metadata),
                static_cast<unsigned long long>(qr.breakdown.keyFetch),
                static_cast<unsigned long long>(qr.breakdown.compute),
                static_cast<unsigned long long>(
                    qr.breakdown.dataAccess),
                static_cast<unsigned long long>(qr.breakdown.locking),
                qr.found,
                static_cast<unsigned long long>(qr.value));
    return 0;
}
