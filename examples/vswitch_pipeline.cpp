/**
 * @file
 * Virtual-switch pipeline example: run the same gateway traffic through
 * the software datapath and the HALO-offloaded datapath and print the
 * per-stage cycle breakdown (the paper's Fig. 2a/3 view).
 *
 *   $ ./build/examples/vswitch_pipeline
 */

#include <cstdio>

#include "flow/ruleset.hh"
#include "vswitch/shard.hh"
#include "vswitch/vswitch.hh"

using namespace halo;

namespace {

void
runMode(const char *name, LookupMode mode)
{
    // Gateway-style traffic: 50K flows against ~20 hot wildcard rules.
    TrafficGenerator gen(TrafficGenerator::scenarioConfig(
        TrafficScenario::ManyFlowsHotRules, 50000));
    const RuleSet rules = scenarioRules(
        TrafficScenario::ManyFlowsHotRules, gen.flows(), 7);

    // SwitchShard bundles the machine wiring (hierarchy + HALO complex
    // + core model + switch) that used to be assembled by hand here.
    SimMemory mem(2ull << 30);
    ShardConfig cfg;
    cfg.useHalo = true;
    cfg.vswitch.mode = mode;
    cfg.vswitch.useEmc = mode == LookupMode::Software;
    cfg.vswitch.tupleConfig.tupleCapacity =
        nextPowerOfTwo(maxRulesPerMask(rules) + 64);
    SwitchShard shard(mem, cfg);
    shard.install(rules);
    VirtualSwitch &vs = shard.vswitch();
    std::printf("\n[%s] %llu rules in %u tuples\n", name,
                static_cast<unsigned long long>(
                    vs.tupleSpace().ruleCount()),
                vs.tupleSpace().numTuples());

    for (int i = 0; i < 1000; ++i) // warmup
        vs.processPacket(gen.nextPacket());
    vs.resetTotals();
    for (int i = 0; i < 3000; ++i)
        vs.processPacket(gen.nextPacket());

    const SwitchTotals &t = vs.totals();
    const double n = static_cast<double>(t.packets);
    std::printf("  %-28s %8.1f cycles/packet\n", "total",
                static_cast<double>(t.total) / n);
    std::printf("  %-28s %8.1f\n", "  packet IO",
                static_cast<double>(t.packetIo) / n);
    std::printf("  %-28s %8.1f\n", "  pre-processing",
                static_cast<double>(t.preprocess) / n);
    std::printf("  %-28s %8.1f\n", "  EMC lookup",
                static_cast<double>(t.emcCycles) / n);
    std::printf("  %-28s %8.1f\n", "  MegaFlow (tuple space)",
                static_cast<double>(t.megaflowCycles) / n);
    std::printf("  %-28s %8.1f\n", "  action/other",
                static_cast<double>(t.otherCycles) / n);
    std::printf("  EMC hit rate %.1f%%, match rate %.1f%%\n",
                100.0 * static_cast<double>(t.emcHits) / n,
                100.0 * static_cast<double>(t.matches) / n);
}

} // namespace

void
runBurstNb()
{
    SimMemory mem(2ull << 30);
    MemoryHierarchy hier;
    HaloSystem halo_sys(mem, hier);
    CoreModel core(hier, 0);

    TrafficGenerator gen(TrafficGenerator::scenarioConfig(
        TrafficScenario::ManyFlowsHotRules, 50000));
    const RuleSet rules = scenarioRules(
        TrafficScenario::ManyFlowsHotRules, gen.flows(), 7);
    VSwitchConfig cfg;
    cfg.mode = LookupMode::HaloNonBlocking;
    cfg.useEmc = false;
    cfg.tupleConfig.tupleCapacity =
        nextPowerOfTwo(maxRulesPerMask(rules) + 64);
    VirtualSwitch vs(mem, hier, core, &halo_sys, cfg);
    vs.installRules(rules);
    vs.warmTables();

    std::vector<FiveTuple> batch(16);
    for (int i = 0; i < 3000; i += 16) {
        for (auto &t : batch)
            t = gen.nextTuple();
        vs.classifyBurstNB(batch);
    }
    const SwitchTotals &t = vs.totals();
    std::printf("\n[HALO non-blocking, 16-packet bursts] "
                "classification only: %.1f cycles/packet "
                "(packet-level pipelining — what Fig. 11 measures)\n",
                static_cast<double>(t.megaflowCycles) /
                    static_cast<double>(t.packets));
}

int
main()
{
    std::printf("HALO virtual-switch pipeline demo "
                "(gateway scenario, 50K flows / hot rules)\n");
    runMode("software datapath", LookupMode::Software);
    runMode("HALO blocking datapath", LookupMode::HaloBlocking);
    runMode("HALO non-blocking datapath", LookupMode::HaloNonBlocking);
    runBurstNb();
    return 0;
}
