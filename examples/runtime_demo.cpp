/**
 * @file
 * Runtime demo: shard the switch across worker threads, observed.
 *
 * Spins up a Runtime with four shared-nothing VirtualSwitch shards,
 * steers 100k packets to them by symmetric RSS over their five-tuples,
 * polls a lock-free snapshot while the dataplane runs, and prints the
 * per-worker and aggregate accounting once everything has drained.
 *
 * The run is fully instrumented with the obs/ layer:
 *  - each worker records HALO_TRACE_SCOPE spans (batches, EMC probes,
 *    tuple-space searches) into a private ring, drained afterwards into
 *    runtime_demo.trace.json — open it in chrome://tracing or
 *    https://ui.perfetto.dev;
 *  - a background sampler snapshots the published counters every 2 ms
 *    and the demo prints the resulting time series;
 *  - the final counters render as Prometheus text exposition.
 *
 *   $ ./build/examples/runtime_demo
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "flow/ruleset.hh"
#include "obs/metrics.hh"
#include "runtime/runtime.hh"

using namespace halo;

int
main()
{
    // 1. A deterministic workload: 5000 flows, and a rule set whose
    //    megaflow entries cover them.
    const TrafficConfig traffic = TrafficGenerator::scenarioConfig(
        TrafficScenario::SmallFlowCount, 5000);
    TrafficGenerator gen(traffic);
    const RuleSet rules = scenarioRules(TrafficScenario::SmallFlowCount,
                                        gen.flows(), 0x707);

    // 2. Four workers, each with a private simulated memory and switch
    //    shard. Symmetric RSS keeps both directions of a connection on
    //    the same shard; a full ring drops (counted) rather than
    //    blocking the producer. traceCapacity gives each worker a
    //    16Ki-event trace ring; the sampler snapshots every 2 ms.
    RuntimeConfig cfg;
    cfg.numWorkers = 4;
    cfg.ringCapacity = 1024;
    cfg.batchSize = 32;
    cfg.rss.symmetric = true;
    cfg.enqueueRetries = 4096; // bounded yields before dropping
    cfg.traceCapacity = 1 << 14;
    cfg.samplerIntervalMicros = 2000;

    const std::uint64_t packets = 100000;
    Runtime rt(cfg, rules);
    rt.start();
    rt.startSampler();
    rt.startProducer(traffic, packets);

    // 3. Any thread may watch progress without locks. Sleep between
    //    polls: on small hosts a spinning observer starves the workers.
    RuntimeSnapshot live = rt.snapshot();
    while (live.offered < packets) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        live = rt.snapshot();
        std::printf("  in flight: offered %8llu  processed %8llu\n",
                    static_cast<unsigned long long>(live.offered),
                    static_cast<unsigned long long>(live.processed));
    }

    rt.joinProducer();
    rt.drain();
    rt.stopSampler();
    rt.stop();

    // 4. Exact post-stop reduction: published counters, SwitchTotals
    //    from each shard, and batch-latency percentiles from the merged
    //    per-worker HdrHistograms.
    const RuntimeReport rep = rt.report();
    for (std::size_t w = 0; w < rep.workers.size(); ++w) {
        const WorkerReport &wr = rep.workers[w];
        std::printf("worker %zu: %8llu pkts  %7llu emc hits  "
                    "batch p50 %6.1f us  p99 %6.1f us\n",
                    w,
                    static_cast<unsigned long long>(wr.counters.packets),
                    static_cast<unsigned long long>(wr.counters.emcHits),
                    wr.batchP50Nanos / 1e3, wr.batchP99Nanos / 1e3);
    }
    std::printf("aggregate: offered %llu, enqueued %llu, processed "
                "%llu, drops %llu, matched %llu, batch p99 %.1f us\n",
                static_cast<unsigned long long>(rep.aggregate.offered),
                static_cast<unsigned long long>(rep.aggregate.enqueued),
                static_cast<unsigned long long>(rep.aggregate.processed),
                static_cast<unsigned long long>(
                    rep.aggregate.ringFullDrops),
                static_cast<unsigned long long>(rep.aggregate.matched),
                rep.batchP99Nanos / 1e3);

    // 5. The sampler's time series: processed-count over the run.
    std::printf("\nsampler series (%zu samples):\n",
                rep.samples.samples());
    for (std::size_t i = 0; i < rep.samples.samples(); ++i)
        std::printf("  t=%6.2f ms  offered %8.0f  processed %8.0f\n",
                    rep.samples.tNanos[i] / 1e6,
                    rep.samples.rows[i][0], rep.samples.rows[i][1]);

    // 6. Drain the per-worker trace rings into one Chrome trace.
    {
        std::ofstream trace("runtime_demo.trace.json");
        rt.writeChromeTrace(trace);
    }
    std::printf("\nwrote runtime_demo.trace.json — open in "
                "chrome://tracing or https://ui.perfetto.dev\n");

    // 7. Everything above, one more way: the unified metrics namespace
    //    rendered as Prometheus text exposition.
    obs::MetricsRegistry reg;
    reg.counter("halo_rt_offered", {}, double(rep.aggregate.offered));
    reg.counter("halo_rt_processed", {},
                double(rep.aggregate.processed));
    reg.counter("halo_rt_ring_full_drops", {},
                double(rep.aggregate.ringFullDrops));
    for (std::size_t w = 0; w < rep.workers.size(); ++w) {
        const std::string id = std::to_string(w);
        reg.counter("halo_worker_packets", {{"worker", id}},
                    double(rep.workers[w].counters.packets));
        reg.gauge("halo_worker_batch_p99_us", {{"worker", id}},
                  rep.workers[w].batchP99Nanos / 1e3);
    }
    std::printf("\n%s", reg.renderPrometheus().c_str());

    return rep.aggregate.processed == rep.aggregate.enqueued ? 0 : 1;
}
