/**
 * @file
 * Runtime demo: shard the switch across worker threads.
 *
 * Spins up a Runtime with four shared-nothing VirtualSwitch shards,
 * steers 100k packets to them by symmetric RSS over their five-tuples,
 * polls a lock-free snapshot while the dataplane runs, and prints the
 * per-worker and aggregate accounting once everything has drained.
 *
 *   $ ./build/examples/runtime_demo
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "flow/ruleset.hh"
#include "runtime/runtime.hh"

using namespace halo;

int
main()
{
    // 1. A deterministic workload: 5000 flows, and a rule set whose
    //    megaflow entries cover them.
    const TrafficConfig traffic = TrafficGenerator::scenarioConfig(
        TrafficScenario::SmallFlowCount, 5000);
    TrafficGenerator gen(traffic);
    const RuleSet rules = scenarioRules(TrafficScenario::SmallFlowCount,
                                        gen.flows(), 0x707);

    // 2. Four workers, each with a private simulated memory and switch
    //    shard. Symmetric RSS keeps both directions of a connection on
    //    the same shard; a full ring drops (counted) rather than
    //    blocking the producer.
    RuntimeConfig cfg;
    cfg.numWorkers = 4;
    cfg.ringCapacity = 1024;
    cfg.batchSize = 32;
    cfg.rss.symmetric = true;
    cfg.enqueueRetries = 4096; // bounded yields before dropping

    const std::uint64_t packets = 100000;
    Runtime rt(cfg, rules);
    rt.start();
    rt.startProducer(traffic, packets);

    // 3. Any thread may watch progress without locks. Sleep between
    //    polls: on small hosts a spinning observer starves the workers.
    RuntimeSnapshot live = rt.snapshot();
    while (live.offered < packets) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        live = rt.snapshot();
        std::printf("  in flight: offered %8llu  processed %8llu\n",
                    static_cast<unsigned long long>(live.offered),
                    static_cast<unsigned long long>(live.processed));
    }

    rt.joinProducer();
    rt.drain();
    rt.stop();

    // 4. Exact post-stop reduction: published counters, SwitchTotals
    //    from each shard, and batch-latency percentiles.
    const RuntimeReport rep = rt.report();
    for (std::size_t w = 0; w < rep.workers.size(); ++w) {
        const WorkerReport &wr = rep.workers[w];
        std::printf("worker %zu: %8llu pkts  %7llu emc hits  "
                    "batch p50 %6.1f us  p99 %6.1f us\n",
                    w,
                    static_cast<unsigned long long>(wr.counters.packets),
                    static_cast<unsigned long long>(wr.counters.emcHits),
                    wr.batchP50Nanos / 1e3, wr.batchP99Nanos / 1e3);
    }
    std::printf("aggregate: offered %llu, enqueued %llu, processed "
                "%llu, drops %llu, matched %llu\n",
                static_cast<unsigned long long>(rep.aggregate.offered),
                static_cast<unsigned long long>(rep.aggregate.enqueued),
                static_cast<unsigned long long>(rep.aggregate.processed),
                static_cast<unsigned long long>(
                    rep.aggregate.ringFullDrops),
                static_cast<unsigned long long>(rep.aggregate.matched));
    return rep.aggregate.processed == rep.aggregate.enqueued ? 0 : 1;
}
